#include "device/nvme_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "fault/fault_injector.h"

namespace sdm {

NvmeDevice::NvmeDevice(DeviceSpec spec, Bytes backing_size, EventLoop* loop, uint64_t seed)
    : spec_(std::move(spec)),
      loop_(loop),
      latency_(spec_, seed),
      wear_(spec_.capacity, spec_.endurance_dwpd),
      fault_rng_(seed ^ 0xfa'017'0000ULL),
      store_(backing_size, 0) {
  assert(loop != nullptr);
  reads_ = stats_.GetCounter("reads");
  read_errors_ = stats_.GetCounter("read_errors");
  bus_bytes_ = stats_.GetCounter("bus_bytes");
  useful_bytes_ = stats_.GetCounter("useful_bytes");
  sub_block_reads_ = stats_.GetCounter("sub_block_reads");
  writes_ = stats_.GetCounter("writes");
  written_bytes_ = stats_.GetCounter("written_bytes");
  checksum_failed_reads_ = stats_.GetCounter("checksum_failed_reads");
  blocks_corrupt_ = stats_.GetCounter("blocks_corrupt");
}

namespace {

/// FNV-1a over one block, truncated to 32 bits. Collision quality is ample
/// for detecting single-byte rot; speed matters more (stamped per write).
uint32_t BlockCrc(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace

void NvmeDevice::set_checksums(bool enabled) {
  if (!enabled) {
    block_crc_.clear();
    return;
  }
  const size_t full_blocks = store_.size() / kBlockSize;
  block_crc_.resize(full_blocks);
  for (size_t b = 0; b < full_blocks; ++b) {
    block_crc_[b] = BlockCrc(store_.data() + b * kBlockSize, kBlockSize);
  }
}

Result<SimDuration> NvmeDevice::Write(Bytes offset, std::span<const uint8_t> data) {
  if (offset + data.size() > store_.size()) {
    return OutOfRangeError("write beyond device backing store");
  }
  std::memcpy(store_.data() + offset, data.data(), data.size());
  if (!block_crc_.empty()) {
    // Re-stamp every full block the write touched from the backing store,
    // so the CRCs are always consistent with what a clean read returns.
    const size_t first = offset / kBlockSize;
    const size_t last = (offset + data.size() - 1) / kBlockSize;
    for (size_t b = first; b <= last && b < block_crc_.size(); ++b) {
      block_crc_[b] = BlockCrc(store_.data() + b * kBlockSize, kBlockSize);
    }
  }
  wear_.RecordWrite(data.size());
  writes_->Add(1);
  written_bytes_->Add(data.size());
  return Seconds(static_cast<double>(data.size()) / spec_.write_bw_bytes_per_sec);
}

Bytes NvmeDevice::BusBytes(Bytes offset, Bytes length, bool sub_block) {
  if (length == 0) return 0;
  if (sub_block) {
    // DWORD-aligned window covering [offset, offset + length).
    const Bytes begin = offset & ~(kDwordBytes - 1);
    const Bytes end = (offset + length + kDwordBytes - 1) & ~(kDwordBytes - 1);
    return end - begin;
  }
  const Bytes first_block = offset / kBlockSize;
  const Bytes last_block = (offset + length - 1) / kBlockSize;
  return (last_block - first_block + 1) * kBlockSize;
}

void NvmeDevice::SubmitRead(ReadRequest req) {
  // Validate, reporting errors through the normal completion path.
  Status error;
  if (req.length == 0) {
    error = InvalidArgumentError("zero-length read");
  } else if (req.offset + req.length > store_.size()) {
    error = OutOfRangeError("read beyond device backing store");
  } else if (req.sub_block && !spec_.supports_sub_block) {
    error = FailedPreconditionError("device lacks SGL bit-bucket sub-block support");
  } else if (req.dest.size() != BusBytes(req.offset, req.length, req.sub_block)) {
    error = InvalidArgumentError("dest buffer size != bus bytes for request");
  }
  if (!error.ok()) {
    read_errors_->Add(1);
    loop_->ScheduleAfter(SimDuration(0),
                         [cb = std::move(req.on_complete), error]() mutable {
                           if (cb) cb(error, SimDuration(0));
                         });
    return;
  }

  const Bytes bus = req.dest.size();
  const SimTime now = loop_->Now();
  SimTime done = latency_.CompleteRead(now, bus);
  if (injector_ != nullptr) {
    // Stall windows freeze completions until they close: the read is not
    // lost, it is (very) late — which is what deadlines must rescue.
    done = injector_->DeferCompletion(device_index_, done);
  }
  const SimDuration lat = done - now;

  // Fault injection: the error surfaces at completion time, after the
  // device has burned the service slot (as a real media error would).
  if (spec_.read_error_probability > 0 &&
      fault_rng_.NextBernoulli(spec_.read_error_probability)) {
    read_errors_->Add(1);
    loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
      if (cb) cb(UnavailableError("uncorrectable media read error"), lat);
    });
    return;
  }

  // Scripted error bursts draw from the injector's own Rng (after the
  // spec's organic draw above, whose stream stays untouched).
  if (injector_ != nullptr && injector_->DrawReadError(device_index_)) {
    read_errors_->Add(1);
    loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
      if (cb) cb(UnavailableError("injected media error burst"), lat);
    });
    return;
  }

  reads_->Add(1);
  bus_bytes_->Add(bus);
  useful_bytes_->Add(req.length);
  if (req.sub_block) sub_block_reads_->Add(1);
  read_latency_.Record(lat);

  // Copy the data now (deterministic; the store is logically immutable
  // between updates) but deliver the completion at the simulated time.
  const Bytes first_block = req.offset / kBlockSize;
  if (req.sub_block) {
    const Bytes begin = req.offset & ~(kDwordBytes - 1);
    std::memcpy(req.dest.data(), store_.data() + begin, req.dest.size());
  } else {
    const Bytes begin = first_block * kBlockSize;
    const Bytes avail = store_.size() - begin;
    const Bytes n = std::min<Bytes>(req.dest.size(), avail);
    std::memcpy(req.dest.data(), store_.data() + begin, n);
    if (n < req.dest.size()) {
      // Tail of the last block extends past the backing store: zero-fill,
      // as a real device would return zeroes for never-written space.
      std::memset(req.dest.data() + n, 0, req.dest.size() - n);
    }
  }

  // Bit-rot windows mutate the PAYLOAD copy, never the backing store —
  // silent corruption in flight. With checksums off this serves garbage
  // (the motivating failure); with them on the block verify below catches
  // it at bounce-buffer fill.
  bool rotted = false;
  if (injector_ != nullptr) {
    rotted = injector_->CorruptReadPayload(device_index_, req.dest);
  }
  if (rotted && !req.sub_block && !block_crc_.empty()) {
    uint64_t bad = 0;
    const size_t blocks = req.dest.size() / kBlockSize;
    for (size_t i = 0; i < blocks; ++i) {
      const size_t b = first_block + i;
      if (b >= block_crc_.size()) break;  // unstamped partial/backing tail
      if (BlockCrc(req.dest.data() + i * kBlockSize, kBlockSize) != block_crc_[b]) {
        ++bad;
      }
    }
    if (bad > 0) {
      checksum_failed_reads_->Add(1);
      blocks_corrupt_->Add(bad);
      loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
        if (cb) cb(DataLossError("block checksum mismatch (bit rot)"), lat);
      });
      return;
    }
  }

  loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
    if (cb) cb(Status::Ok(), lat);
  });
}

double NvmeDevice::ReadAmplification() const {
  const uint64_t useful = useful_bytes_->value();
  if (useful == 0) return 1.0;
  return static_cast<double>(bus_bytes_->value()) / static_cast<double>(useful);
}

}  // namespace sdm
