#include "device/nvme_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "fault/fault_injector.h"

namespace sdm {

NvmeDevice::NvmeDevice(DeviceSpec spec, Bytes backing_size, EventLoop* loop, uint64_t seed)
    : spec_(std::move(spec)),
      loop_(loop),
      latency_(spec_, seed),
      wear_(spec_.capacity, spec_.endurance_dwpd),
      fault_rng_(seed ^ 0xfa'017'0000ULL),
      store_(backing_size, 0) {
  assert(loop != nullptr);
  reads_ = stats_.GetCounter("reads");
  read_errors_ = stats_.GetCounter("read_errors");
  bus_bytes_ = stats_.GetCounter("bus_bytes");
  useful_bytes_ = stats_.GetCounter("useful_bytes");
  sub_block_reads_ = stats_.GetCounter("sub_block_reads");
  writes_ = stats_.GetCounter("writes");
  written_bytes_ = stats_.GetCounter("written_bytes");
}

Result<SimDuration> NvmeDevice::Write(Bytes offset, std::span<const uint8_t> data) {
  if (offset + data.size() > store_.size()) {
    return OutOfRangeError("write beyond device backing store");
  }
  std::memcpy(store_.data() + offset, data.data(), data.size());
  wear_.RecordWrite(data.size());
  writes_->Add(1);
  written_bytes_->Add(data.size());
  return Seconds(static_cast<double>(data.size()) / spec_.write_bw_bytes_per_sec);
}

Bytes NvmeDevice::BusBytes(Bytes offset, Bytes length, bool sub_block) {
  if (length == 0) return 0;
  if (sub_block) {
    // DWORD-aligned window covering [offset, offset + length).
    const Bytes begin = offset & ~(kDwordBytes - 1);
    const Bytes end = (offset + length + kDwordBytes - 1) & ~(kDwordBytes - 1);
    return end - begin;
  }
  const Bytes first_block = offset / kBlockSize;
  const Bytes last_block = (offset + length - 1) / kBlockSize;
  return (last_block - first_block + 1) * kBlockSize;
}

void NvmeDevice::SubmitRead(ReadRequest req) {
  // Validate, reporting errors through the normal completion path.
  Status error;
  if (req.length == 0) {
    error = InvalidArgumentError("zero-length read");
  } else if (req.offset + req.length > store_.size()) {
    error = OutOfRangeError("read beyond device backing store");
  } else if (req.sub_block && !spec_.supports_sub_block) {
    error = FailedPreconditionError("device lacks SGL bit-bucket sub-block support");
  } else if (req.dest.size() != BusBytes(req.offset, req.length, req.sub_block)) {
    error = InvalidArgumentError("dest buffer size != bus bytes for request");
  }
  if (!error.ok()) {
    read_errors_->Add(1);
    loop_->ScheduleAfter(SimDuration(0),
                         [cb = std::move(req.on_complete), error]() mutable {
                           if (cb) cb(error, SimDuration(0));
                         });
    return;
  }

  const Bytes bus = req.dest.size();
  const SimTime now = loop_->Now();
  SimTime done = latency_.CompleteRead(now, bus);
  if (injector_ != nullptr) {
    // Stall windows freeze completions until they close: the read is not
    // lost, it is (very) late — which is what deadlines must rescue.
    done = injector_->DeferCompletion(device_index_, done);
  }
  const SimDuration lat = done - now;

  // Fault injection: the error surfaces at completion time, after the
  // device has burned the service slot (as a real media error would).
  if (spec_.read_error_probability > 0 &&
      fault_rng_.NextBernoulli(spec_.read_error_probability)) {
    read_errors_->Add(1);
    loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
      if (cb) cb(UnavailableError("uncorrectable media read error"), lat);
    });
    return;
  }

  // Scripted error bursts draw from the injector's own Rng (after the
  // spec's organic draw above, whose stream stays untouched).
  if (injector_ != nullptr && injector_->DrawReadError(device_index_)) {
    read_errors_->Add(1);
    loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
      if (cb) cb(UnavailableError("injected media error burst"), lat);
    });
    return;
  }

  reads_->Add(1);
  bus_bytes_->Add(bus);
  useful_bytes_->Add(req.length);
  if (req.sub_block) sub_block_reads_->Add(1);
  read_latency_.Record(lat);

  // Copy the data now (deterministic; the store is logically immutable
  // between updates) but deliver the completion at the simulated time.
  if (req.sub_block) {
    const Bytes begin = req.offset & ~(kDwordBytes - 1);
    std::memcpy(req.dest.data(), store_.data() + begin, req.dest.size());
  } else {
    const Bytes first_block = req.offset / kBlockSize;
    const Bytes begin = first_block * kBlockSize;
    const Bytes avail = store_.size() - begin;
    const Bytes n = std::min<Bytes>(req.dest.size(), avail);
    std::memcpy(req.dest.data(), store_.data() + begin, n);
    if (n < req.dest.size()) {
      // Tail of the last block extends past the backing store: zero-fill,
      // as a real device would return zeroes for never-written space.
      std::memset(req.dest.data() + n, 0, req.dest.size() - n);
    }
  }

  loop_->ScheduleAt(done, [cb = std::move(req.on_complete), lat]() mutable {
    if (cb) cb(Status::Ok(), lat);
  });
}

double NvmeDevice::ReadAmplification() const {
  const uint64_t useful = useful_bytes_->value();
  if (useful == 0) return 1.0;
  return static_cast<double>(bus_bytes_->value()) / static_cast<double>(useful);
}

}  // namespace sdm
