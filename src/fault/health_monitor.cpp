#include "fault/health_monitor.h"

#include <cassert>

namespace sdm {

HealthMonitor::HealthMonitor(HealthMonitorConfig config, size_t endpoints)
    : config_(config),
      endpoints_(endpoints),
      sick_transitions_(stats_.GetCounter("sick_transitions")),
      probes_admitted_(stats_.GetCounter("probes_admitted")),
      sheds_(stats_.GetCounter("sheds")),
      was_sick_(endpoints, 0) {
  assert(config_.window >= 1);
  assert(config_.probe_interval >= 1);
  for (Endpoint& e : endpoints_) {
    e.outcomes.assign(static_cast<size_t>(config_.window), 0);
  }
}

void HealthMonitor::set_obs(Observability* obs, EventLoop* loop,
                            const std::string& name) {
  obs_loop_ = loop;
  obs_sick_ = ObsCounter(obs, name + "health/sick_transitions");
  obs_sheds_ = ObsCounter(obs, name + "health/sheds");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = name;
    if (!process.empty() && process.back() == '/') process.pop_back();
    obs_track_ = obs_spans_->Track(process, "health");
  }
}

void HealthMonitor::Record(size_t endpoint, bool ok) {
  if (!config_.enabled) return;
  assert(endpoint < endpoints_.size());
  Endpoint& e = endpoints_[endpoint];
  const uint8_t incoming = ok ? 0 : 1;
  if (e.samples == e.outcomes.size()) {
    e.errors -= e.outcomes[e.next];  // evict the oldest outcome
  } else {
    ++e.samples;
  }
  e.errors += incoming;
  e.outcomes[e.next] = incoming;
  e.next = (e.next + 1) % e.outcomes.size();

  const bool sick = Sick(endpoint);
  const bool edge = sick && !was_sick_[endpoint];
  if (edge) {
    sick_transitions_->Add(1);
    if (obs_sick_ != nullptr) obs_sick_->Add(obs_loop_->Now());
    if (obs_spans_ != nullptr) {
      obs_spans_->Instant(obs_track_, "sick", obs_loop_->Now(),
                          "{\"endpoint\":" + std::to_string(endpoint) + "}");
    }
    e.probe_clock = 0;
  }
  if (!sick && was_sick_[endpoint] && obs_spans_ != nullptr) {
    obs_spans_->Instant(obs_track_, "recovered", obs_loop_->Now(),
                        "{\"endpoint\":" + std::to_string(endpoint) + "}");
  }
  was_sick_[endpoint] = sick ? 1 : 0;
  // Notify after the state flip so the listener observes Sick() == true.
  if (edge && sick_listener_) sick_listener_(endpoint);
}

bool HealthMonitor::Sick(size_t endpoint) const {
  if (!config_.enabled) return false;
  assert(endpoint < endpoints_.size());
  const Endpoint& e = endpoints_[endpoint];
  // Half a window of evidence before condemning an endpoint: a single
  // early error must not trip a 100%-error fraction.
  if (e.samples < e.outcomes.size() / 2 + 1) return false;
  return static_cast<double>(e.errors) >=
         config_.sick_threshold * static_cast<double>(e.samples);
}

bool HealthMonitor::AdmitProbe(size_t endpoint) {
  assert(endpoint < endpoints_.size());
  Endpoint& e = endpoints_[endpoint];
  const bool admit =
      e.probe_clock % static_cast<uint64_t>(config_.probe_interval) == 0;
  ++e.probe_clock;
  if (admit) {
    probes_admitted_->Add(1);
  } else {
    sheds_->Add(1);
    if (obs_sheds_ != nullptr) obs_sheds_->Add(obs_loop_->Now());
  }
  return admit;
}

}  // namespace sdm
