// FaultPlan — a deterministic script of time-windowed faults.
//
// A plan is a list of windows, each activating one fault kind over a
// half-open virtual-time interval [begin, end) against one device (or all
// devices / the whole fabric). The plan itself is pure data; FaultInjector
// interprets it against an EventLoop clock with its own seeded Rng, so a
// given (plan, seed) pair replays byte-identically and an EMPTY plan draws
// nothing — runs without faults stay byte-identical to a build with
// injection compiled out (pinned by fault_injection_test).
//
// Fault kinds model the failure taxonomy the robustness layer answers:
//  - kErrorBurst:      per-read Bernoulli media errors while the window is
//                      active (transient uncorrectable reads, a dying die);
//  - kFailSlow:        multiply device service time (GC pause, thermal
//                      throttle, a neighbor hammering the device);
//  - kStall:           completions freeze until the window closes (firmware
//                      hiccup; latency is deferred, reads are not lost);
//  - kFabricDrop:      per-transfer Bernoulli loss on a FabricLink (the
//                      transfer vanishes; only IO deadlines recover it);
//  - kFabricPartition: the link carries nothing until the window closes;
//                      transfers queue and deliver at heal time;
//  - kBitRot:          per-read Bernoulli SILENT corruption — the read
//                      completes OK but a payload byte is flipped (drawn
//                      from the injector's own Rng, so replay-exact). The
//                      backing media stays intact: only checksummed reads
//                      (TuningConfig::enable_checksums) can detect it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sdm {

enum class FaultKind : uint8_t {
  kErrorBurst,
  kFailSlow,
  kStall,
  kFabricDrop,
  kFabricPartition,
  kBitRot,
};

[[nodiscard]] inline const char* ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kErrorBurst: return "error_burst";
    case FaultKind::kFailSlow: return "fail_slow";
    case FaultKind::kStall: return "stall";
    case FaultKind::kFabricDrop: return "fabric_drop";
    case FaultKind::kFabricPartition: return "fabric_partition";
    case FaultKind::kBitRot: return "bit_rot";
  }
  return "unknown";
}

struct FaultWindow {
  FaultKind kind = FaultKind::kErrorBurst;
  /// Active over [begin, end) of virtual time.
  SimTime begin;
  SimTime end;
  /// Target device index; -1 targets every device (and, for fabric kinds,
  /// every link).
  int device = -1;
  /// kErrorBurst: per-read error probability. kFabricDrop: per-transfer
  /// drop probability. kBitRot: per-read payload-corruption probability.
  double probability = 0;
  /// kFailSlow: multiplier on device service time (>= 1).
  double latency_multiplier = 1;
};

/// Builder-style container so benches read like the storm they script.
struct FaultPlan {
  std::vector<FaultWindow> windows;

  [[nodiscard]] bool empty() const { return windows.empty(); }

  FaultPlan& ErrorBurst(SimTime begin, SimTime end, double probability,
                        int device = -1) {
    windows.push_back({FaultKind::kErrorBurst, begin, end, device, probability, 1});
    return *this;
  }
  FaultPlan& FailSlow(SimTime begin, SimTime end, double multiplier,
                      int device = -1) {
    windows.push_back({FaultKind::kFailSlow, begin, end, device, 0, multiplier});
    return *this;
  }
  FaultPlan& Stall(SimTime begin, SimTime end, int device = -1) {
    windows.push_back({FaultKind::kStall, begin, end, device, 0, 1});
    return *this;
  }
  FaultPlan& FabricDrop(SimTime begin, SimTime end, double probability,
                        int device = -1) {
    windows.push_back({FaultKind::kFabricDrop, begin, end, device, probability, 1});
    return *this;
  }
  FaultPlan& FabricPartition(SimTime begin, SimTime end, int device = -1) {
    windows.push_back({FaultKind::kFabricPartition, begin, end, device, 0, 1});
    return *this;
  }
  FaultPlan& BitRot(SimTime begin, SimTime end, double probability,
                    int device = -1) {
    windows.push_back({FaultKind::kBitRot, begin, end, device, probability, 1});
    return *this;
  }
};

}  // namespace sdm
