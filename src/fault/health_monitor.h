// HealthMonitor — per-endpoint IO health scoring with probe-driven recovery.
//
// Each endpoint (an SM device of a SharedDeviceService, which for a
// disaggregated cluster means a device behind the fabric and its link)
// keeps a sliding window of recent IO outcomes. When the error fraction of
// a sufficiently-populated window crosses the sick threshold, the endpoint
// is SICK: lookup engines consult Sick() before their IO phase and shed SM
// reads to degraded mode instead of queueing onto a failing device — on a
// disaggregated host, whose SM lives entirely behind the fabric, shedding
// IS the local-path failover (FM-resident rows and caches still serve).
//
// Recovery is probe-driven: while sick, AdmitProbe() passes every Nth
// lookup through to the device; probe successes wash the errors out of the
// window and the endpoint turns healthy when the fault window closes.
// Deterministic (a counter, not a timer), so replays are exact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_loop.h"
#include "common/stats.h"
#include "obs/observability.h"

namespace sdm {

struct HealthMonitorConfig {
  bool enabled = false;
  /// Error fraction of the window at which the endpoint is sick.
  double sick_threshold = 0.5;
  /// Outcomes retained per endpoint; sickness needs >= window/2 samples.
  int window = 64;
  /// While sick, every Nth AdmitProbe() call is admitted.
  int probe_interval = 16;
};

class HealthMonitor {
 public:
  HealthMonitor(HealthMonitorConfig config, size_t endpoints);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Records one IO outcome on `endpoint`.
  void Record(size_t endpoint, bool ok);

  /// True when `endpoint`'s recent error fraction crosses the threshold.
  /// Always false when the monitor is disabled.
  [[nodiscard]] bool Sick(size_t endpoint) const;

  /// While sick, admits every Nth call as a recovery probe (first call
  /// after turning sick is admitted). Callers shed when Sick() &&
  /// !AdmitProbe().
  [[nodiscard]] bool AdmitProbe(size_t endpoint);

  /// Called synchronously from Record() on every healthy->sick edge with
  /// the endpoint index — the trigger the ReplicationManager (src/fault)
  /// re-replicates on. At most one listener; never invoked when disabled.
  void SetSickTransitionListener(std::function<void(size_t)> listener) {
    sick_listener_ = std::move(listener);
  }

  [[nodiscard]] size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] const HealthMonitorConfig& config() const { return config_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  /// Observability (src/obs): windowed metrics under `<name>health/` plus
  /// sick/recovered trace instants. The monitor has no clock of its own, so
  /// the caller lends it `loop` for timestamps. Does NOT use the (single)
  /// sick-transition listener slot — that belongs to the ReplicationManager.
  void set_obs(Observability* obs, EventLoop* loop, const std::string& name);

 private:
  struct Endpoint {
    std::vector<uint8_t> outcomes;  ///< ring buffer, 1 = error
    size_t next = 0;                ///< ring write cursor
    size_t samples = 0;             ///< min(total recorded, window)
    size_t errors = 0;              ///< errors currently in the window
    uint64_t probe_clock = 0;       ///< AdmitProbe calls while sick
  };

  HealthMonitorConfig config_;
  std::vector<Endpoint> endpoints_;
  StatsRegistry stats_;
  Counter* sick_transitions_ = nullptr;
  Counter* probes_admitted_ = nullptr;
  Counter* sheds_ = nullptr;
  std::vector<uint8_t> was_sick_;  ///< per-endpoint edge detector
  std::function<void(size_t)> sick_listener_;

  // ---- Observability (src/obs); all null when off ----
  EventLoop* obs_loop_ = nullptr;
  WindowedCounter* obs_sick_ = nullptr;
  WindowedCounter* obs_sheds_ = nullptr;
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
