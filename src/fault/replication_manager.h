// ReplicationManager — heat-ranked extent re-replication off sick devices.
//
// When the HealthMonitor condemns an SM endpoint, this manager copies the
// endpoint's hottest extents (demand heat from the service's registry) onto
// the least-filled healthy device, then publishes the replica route so
// lookup engines fail over, schedulers hedge cross-replica, and checksum-
// failed reads repair instead of zero-filling.
//
// The copy itself is modelled honestly but cheaply:
//   - READ time rides the source device's scheduler on the byte-budgeted
//     background lane (kBackground), so re-replication competes with —
//     and parks behind — demand traffic exactly like any background work.
//   - The BYTES come from the source device's backing store (ground
//     truth). In-flight bit rot never reaches a replica: a real scrubber
//     re-reads until each block verifies, and modelling those extra reads
//     would only add noise to the lane accounting.
//   - WRITE time is the target device's streaming write cost; the route is
//     published only after the write completes, so a replica is never
//     routable before its bytes exist.
// Chunks that keep failing (a sick device can be erroring, not just slow)
// are retried a few times and the extent is then abandoned — degraded mode
// remains the backstop, exactly as before this layer existed.
//
// One copy job runs at a time; sickness transitions queue behind it. Each
// transition replicates at most tuning.replication_hot_extents extents and
// tuning.replication_byte_budget bytes. Deterministic: all scheduling is
// virtual-time, all ordering heat-then-id.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/event_loop.h"
#include "common/result.h"
#include "common/stats.h"
#include "tenant/shared_device_service.h"

namespace sdm {

class ReplicationManager {
 public:
  /// `service` must be a local (device-owning) stack and outlive this.
  ReplicationManager(SharedDeviceService* service, EventLoop* loop);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Healthy->sick edge on `endpoint`: queue its hottest extents for
  /// re-replication. Safe to call mid-copy (jobs run one at a time).
  void OnEndpointSick(size_t endpoint);

  /// Invoked (after the local route is installed) for every published
  /// replica — the sharded runtime uses it to post AddReplicaRoute to the
  /// host slices' private views.
  void SetPublishHook(
      std::function<void(uint64_t, SharedDeviceService::ReplicaLocation)> hook) {
    publish_hook_ = std::move(hook);
  }

  [[nodiscard]] uint64_t extents_replicated() const {
    return extents_replicated_->value();
  }
  [[nodiscard]] uint64_t extents_abandoned() const {
    return extents_abandoned_->value();
  }
  [[nodiscard]] uint64_t bytes_copied() const { return bytes_copied_->value(); }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  /// Observability (src/obs): windowed metrics under `<name>repl/` and
  /// replicate/abandon trace instants. Null obs keeps every handle null.
  void set_obs(Observability* obs, const std::string& name);

 private:
  struct CopyJob {
    uint64_t extent = 0;
    size_t source = 0;
  };

  void Pump();                      ///< start the next queued job if idle
  void CopyChunk(Bytes done, int attempts_left);
  void FinishExtent(bool copied);   ///< write + publish, or abandon

  /// Lane billing identity, registered on first use — registering in the
  /// constructor would shift host/tenant ids handed out after the service
  /// is built.
  TenantId BillingTenant();

  SharedDeviceService* service_;
  EventLoop* loop_;
  std::deque<CopyJob> queue_;
  bool running_ = false;
  CopyJob job_;                                     ///< current job
  SharedDeviceService::ExtentSpan span_;            ///< current job's source span
  SharedDeviceService::ReplicaLocation replica_;    ///< current job's target
  bool tenant_registered_ = false;
  TenantId tenant_ = 0;
  std::function<void(uint64_t, SharedDeviceService::ReplicaLocation)> publish_hook_;

  StatsRegistry stats_;
  Counter* extents_replicated_ = nullptr;
  Counter* extents_abandoned_ = nullptr;
  Counter* bytes_copied_ = nullptr;
  Counter* chunk_retries_ = nullptr;

  // ---- Observability (src/obs); all null when off ----
  WindowedCounter* obs_replicated_ = nullptr;
  WindowedCounter* obs_abandoned_ = nullptr;
  WindowedCounter* obs_bytes_ = nullptr;
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
