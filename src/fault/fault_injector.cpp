#include "fault/fault_injector.h"

#include <cassert>

namespace sdm {

FaultInjector::FaultInjector(FaultPlan plan, EventLoop* loop, uint64_t seed)
    : plan_(std::move(plan)),
      loop_(loop),
      rng_(seed ^ 0xfa'17'0000ULL),
      injected_errors_(stats_.GetCounter("injected_errors")),
      injected_bit_rot_(stats_.GetCounter("injected_bit_rot")),
      injected_drops_(stats_.GetCounter("injected_drops")),
      stalled_completions_(stats_.GetCounter("stalled_completions")),
      partitioned_transfers_(stats_.GetCounter("partitioned_transfers")) {
  assert(loop != nullptr);
}

bool FaultInjector::DrawReadError(int device) {
  const SimTime now = loop_->Now();
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kErrorBurst) continue;
    if (!Targets(w, device) || !Active(w, now)) continue;
    // One draw per active window: overlapping bursts stack, and the draw
    // count stays a pure function of (plan, time), keeping replays exact.
    if (rng_.NextBernoulli(w.probability)) {
      injected_errors_->Add(1);
      return true;
    }
  }
  return false;
}

bool FaultInjector::CorruptReadPayload(int device, std::span<uint8_t> payload) {
  if (payload.empty()) return false;
  const SimTime now = loop_->Now();
  bool mutated = false;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kBitRot) continue;
    if (!Targets(w, device) || !Active(w, now)) continue;
    // One hit draw per active window, one byte-position draw per hit: the
    // draw count stays a pure function of (plan, time, hits) — replay-exact.
    if (rng_.NextBernoulli(w.probability)) {
      payload[rng_.NextBounded(payload.size())] ^= 0xFF;
      injected_bit_rot_->Add(1);
      mutated = true;
    }
  }
  return mutated;
}

double FaultInjector::ServiceMultiplier(int device) const {
  const SimTime now = loop_->Now();
  double mult = 1.0;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kFailSlow) continue;
    if (!Targets(w, device) || !Active(w, now)) continue;
    mult *= w.latency_multiplier;
  }
  return mult;
}

SimTime FaultInjector::DeferCompletion(int device, SimTime done) {
  SimTime deferred = done;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kStall) continue;
    // A completion landing inside a stall window freezes until the window
    // closes (the read is not lost, just late — firmware-hiccup semantics).
    if (Targets(w, device) && Active(w, deferred) && w.end > deferred) {
      deferred = w.end;
    }
  }
  if (deferred > done) stalled_completions_->Add(1);
  return deferred;
}

bool FaultInjector::DrawFabricDrop(int device) {
  const SimTime now = loop_->Now();
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kFabricDrop) continue;
    if (!Targets(w, device) || !Active(w, now)) continue;
    if (rng_.NextBernoulli(w.probability)) {
      injected_drops_->Add(1);
      return true;
    }
  }
  return false;
}

SimTime FaultInjector::DeferFabricTransfer(int device, SimTime start) {
  SimTime deferred = start;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kFabricPartition) continue;
    // Store-and-forward partition: the transfer waits for the heal instead
    // of vanishing (a drop window models loss).
    if (Targets(w, device) && Active(w, deferred) && w.end > deferred) {
      deferred = w.end;
    }
  }
  if (deferred > start) partitioned_transfers_->Add(1);
  return deferred;
}

}  // namespace sdm
