// FaultInjector — interprets a FaultPlan against the EventLoop clock.
//
// One injector serves a whole device stack: NvmeDevice asks it whether a
// read inside an active error-burst window should fail and how far a stall
// window defers the completion; LatencyModel asks for the fail-slow service
// multiplier; FabricLink asks whether a transfer is dropped and when a
// partition heals. Every probabilistic draw comes from the injector's OWN
// seeded Rng — device/model RNG streams are never touched, so a null or
// empty-plan injector leaves the simulation byte-identical (pinned by
// fault_injection_test) and a given (plan, seed) replays exactly.
//
// Draw counts depend only on (plan, virtual time, call sequence), all of
// which are deterministic, so two runs with the same plan+seed see the same
// faults at the same instants.
#pragma once

#include <cstdint>
#include <span>

#include "common/event_loop.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fault/fault_plan.h"

namespace sdm {

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, EventLoop* loop, uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ---- Device hooks (NvmeDevice / LatencyModel) ---------------------------

  /// Draws one injected media error for a read on `device` at Now().
  /// Consumes an Rng draw only while an error-burst window targeting the
  /// device is active.
  [[nodiscard]] bool DrawReadError(int device);

  /// Silent corruption: while a bit-rot window targeting `device` is
  /// active, one Bernoulli draw per window decides whether this read's
  /// payload rots; on a hit one payload byte (chosen by the injector's own
  /// Rng) is XOR-flipped in place. The read still completes OK — only a
  /// checksum verify can tell. Returns true if `payload` was mutated.
  bool CorruptReadPayload(int device, std::span<uint8_t> payload);

  /// Multiplier on device service time at Now() (1.0 when no fail-slow
  /// window targets the device). Overlapping windows compound.
  [[nodiscard]] double ServiceMultiplier(int device) const;

  /// Earliest instant a completion on `device` may be delivered: `done`
  /// itself, or the close of the latest stall window active at `done`.
  [[nodiscard]] SimTime DeferCompletion(int device, SimTime done);

  // ---- Fabric hooks (FabricLink) ------------------------------------------

  /// Draws one transfer loss on the link fronting `device` at Now().
  [[nodiscard]] bool DrawFabricDrop(int device);

  /// Earliest instant the link fronting `device` may start a transfer:
  /// `start`, or the heal time of the latest partition window active then.
  [[nodiscard]] SimTime DeferFabricTransfer(int device, SimTime start);

  // ---- Introspection ------------------------------------------------------

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

 private:
  [[nodiscard]] bool Targets(const FaultWindow& w, int device) const {
    return w.device < 0 || w.device == device;
  }
  [[nodiscard]] bool Active(const FaultWindow& w, SimTime at) const {
    return at >= w.begin && at < w.end;
  }

  FaultPlan plan_;
  EventLoop* loop_;
  Rng rng_;
  StatsRegistry stats_;
  Counter* injected_errors_ = nullptr;
  Counter* injected_bit_rot_ = nullptr;
  Counter* injected_drops_ = nullptr;
  Counter* stalled_completions_ = nullptr;
  Counter* partitioned_transfers_ = nullptr;
};

}  // namespace sdm
