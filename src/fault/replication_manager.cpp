#include "fault/replication_manager.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "device/nvme_device.h"
#include "sched/batch_scheduler.h"

namespace sdm {

namespace {

/// Per-chunk retry budget. The source is sick by definition, so a few
/// redraws (error bursts are probabilistic; stalls defer, not fail) earn
/// their keep — but a hard-down device must not pin the copy loop forever.
constexpr int kChunkRetries = 4;

}  // namespace

ReplicationManager::ReplicationManager(SharedDeviceService* service, EventLoop* loop)
    : service_(service), loop_(loop) {
  assert(service != nullptr);
  assert(!service->remote() && "replication runs on the device-owning stack");
  assert(loop != nullptr);
  extents_replicated_ = stats_.GetCounter("extents_replicated");
  extents_abandoned_ = stats_.GetCounter("extents_abandoned");
  bytes_copied_ = stats_.GetCounter("bytes_copied");
  chunk_retries_ = stats_.GetCounter("chunk_retries");
}

void ReplicationManager::set_obs(Observability* obs, const std::string& name) {
  obs_replicated_ = ObsCounter(obs, name + "repl/extents_replicated");
  obs_abandoned_ = ObsCounter(obs, name + "repl/extents_abandoned");
  obs_bytes_ = ObsCounter(obs, name + "repl/bytes_copied");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = name;
    if (!process.empty() && process.back() == '/') process.pop_back();
    obs_track_ = obs_spans_->Track(process, "repl");
  }
}

TenantId ReplicationManager::BillingTenant() {
  if (!tenant_registered_) {
    tenant_ = service_->RegisterTenant("replication", TenantClass::kBackground);
    tenant_registered_ = true;
  }
  return tenant_;
}

void ReplicationManager::OnEndpointSick(size_t endpoint) {
  const TuningConfig& tuning = service_->config().tuning;
  const std::vector<uint64_t> hot = service_->HottestExtentsOn(
      endpoint, static_cast<size_t>(tuning.replication_hot_extents));
  Bytes budget = tuning.replication_byte_budget;
  for (const uint64_t id : hot) {
    const auto span = service_->ExtentInfoFor(id);
    if (!span.has_value() || span->size > budget) continue;  // budget-capped
    budget -= span->size;
    queue_.push_back(CopyJob{id, endpoint});
  }
  Pump();
}

void ReplicationManager::Pump() {
  while (!running_ && !queue_.empty()) {
    job_ = queue_.front();
    queue_.pop_front();
    const auto span = service_->ExtentInfoFor(job_.extent);
    const auto target = service_->FindReplicaTarget(job_.source);
    if (!span.has_value() || !target.ok()) {
      // Single-device stacks (or all-sick peers) have nowhere to heal to;
      // degraded mode stays the backstop.
      extents_abandoned_->Add(1);
      continue;
    }
    const auto loc = service_->AllocateReplica(job_.extent, target.value());
    if (!loc.ok()) {
      extents_abandoned_->Add(1);
      continue;
    }
    span_ = *span;
    replica_ = loc.value();
    running_ = true;
    CopyChunk(0, kChunkRetries);
  }
}

void ReplicationManager::CopyChunk(Bytes done, int attempts_left) {
  if (done >= span_.size) {
    FinishExtent(/*copied=*/true);
    return;
  }
  const TuningConfig& tuning = service_->config().tuning;
  const Bytes begin = span_.offset + done;
  const Bytes len = std::min<Bytes>(tuning.replication_chunk_bytes, span_.size - done);

  // The read rides the SOURCE device's scheduler on the background lane:
  // re-replication pays real queue/media time and parks behind demand like
  // any background tenant — the lane budget is the drain-rate governor.
  BatchScheduler::ReadRequest req;
  req.span_begin = begin;
  req.span_end = begin + len;
  req.first_block = begin / kBlockSize;
  req.last_block = (begin + len - 1) / kBlockSize;
  req.sub_block = false;
  req.kind = BatchScheduler::ReadRequest::Kind::kBackground;
  req.tenant = static_cast<uint32_t>(BillingTenant());
  // Device-to-device maintenance: on a fabric-attached stack the chunk
  // never crosses the host fabric (source and destination both live on the
  // service side).
  req.service_local = true;
  req.cb = [this, done, len, attempts_left](Status status, const uint8_t* /*data*/,
                                            Bytes /*base*/) {
    if (status.ok()) {
      CopyChunk(done + len, kChunkRetries);
      return;
    }
    if (attempts_left > 0) {
      chunk_retries_->Add(1);
      const int attempt_index = kChunkRetries - attempts_left;
      const SimDuration backoff =
          SimDuration(service_->config().tuning.retry_backoff_base.nanos()
                      << std::min(attempt_index, 30));
      loop_->ScheduleAfter(backoff, [this, done, attempts_left] {
        CopyChunk(done, attempts_left - 1);
      });
      return;
    }
    FinishExtent(/*copied=*/false);
  };
  (void)service_->scheduler(span_.device).Enqueue(std::move(req));
}

void ReplicationManager::FinishExtent(bool copied) {
  if (!copied) {
    extents_abandoned_->Add(1);
    if (obs_abandoned_ != nullptr) obs_abandoned_->Add(loop_->Now());
    if (obs_spans_ != nullptr) {
      obs_spans_->Instant(obs_track_, "extent_abandoned", loop_->Now(),
                          "{\"extent\":" + std::to_string(job_.extent) + "}");
    }
    SDM_LOG_INFO << "replication: abandoned extent " << job_.extent
                 << " (source device " << job_.source << " unreadable)";
    running_ = false;
    Pump();
    return;
  }
  // Stage from the source backing store (ground truth — see file header)
  // and pay the target's streaming write cost; Write re-stamps the target's
  // block checksums over the replica bytes.
  NvmeDevice& src = service_->device(span_.device);
  NvmeDevice& dst = service_->device(replica_.device);
  const auto wrote =
      dst.Write(replica_.offset, src.backing().subspan(span_.offset, span_.size));
  if (!wrote.ok()) {
    extents_abandoned_->Add(1);
    running_ = false;
    Pump();
    return;
  }
  bytes_copied_->Add(span_.size);
  if (obs_bytes_ != nullptr) obs_bytes_->Add(loop_->Now(), span_.size);
  const uint64_t id = job_.extent;
  const SharedDeviceService::ReplicaLocation loc = replica_;
  // Publish only once the write lands: a replica must never be routable
  // before its bytes exist.
  loop_->ScheduleAfter(wrote.value(), [this, id, loc] {
    extents_replicated_->Add(1);
    if (obs_replicated_ != nullptr) obs_replicated_->Add(loop_->Now());
    if (obs_spans_ != nullptr) {
      obs_spans_->Instant(obs_track_, "extent_replicated", loop_->Now(),
                          "{\"extent\":" + std::to_string(id) + "}");
    }
    service_->AddReplicaRoute(id, loc);
    if (publish_hook_) publish_hook_(id, loc);
    SDM_LOG_INFO << "replication: extent " << id << " replicated to device "
                 << loc.device << " @ " << loc.offset;
    running_ = false;
    Pump();
  });
}

}  // namespace sdm
