// SharedDeviceService — one SM device stack shared by N tenant stores
// (ROADMAP "Sharded SdmStore"; paper §5.3's capacity argument at IO
// granularity).
//
// The service owns everything that is per-DEVICE rather than per-tenant:
// the simulated NVMe devices, their IoEngines and DirectIoReaders, the
// per-device BatchSchedulers, the shared BufferArena, the (tenant, table)
// scoped TableThrottle, and the device-space allocator. N SdmStore shards
// (one per tenant, or per NUMA node) attach to it, so concurrent tenants'
// reads flow through ONE scheduler per device and dedup / merge /
// single-flight across store boundaries — co-located tenants share each
// other's hot-block reads instead of issuing N copies.
//
// Table extents and content dedup: tenants serving the same model (A/B
// variants, replicas of a shared base) load byte-identical tables. The
// extent registry keys on (table name, size, content hash); a tenant
// loading a table another tenant already placed attaches to the existing
// extent — no second copy, no second write — which is exactly what makes
// their hot sets overlap at the device and the cross-tenant single-flight
// pay off. The same tenant never dedups against itself, so a single-tenant
// service behaves byte-identically to the owned-device path (SdmStore
// constructs a private service when not attached to a shared one). Shared
// extents are read-only: in-place model updates of a deduped table are not
// supported (refresh loads a new extent instead).
//
// QoS: RegisterTenant records each tenant's TenantClass; stores route
// their demand reads to the scheduler lane the class maps to (foreground =
// demand lane, background = byte-budgeted background lane). The service is
// also the aggregation point for per-tenant fair-share accounting: bus
// bytes per lane, cross-tenant single-flight hits, throttle queue time.
//
// Disaggregation (src/fabric): a FabricAttachedService wraps this service
// behind per-device FabricLinks so whole HOSTS — not just tenant stores
// within a host — share the stack; hosts register through the same
// RegisterTenant machinery and the ledger above becomes the per-host
// fair-share ledger.
//
// Single-threaded on one EventLoop, like every component it owns. The
// service must outlive every attached store.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/event_loop.h"
#include "common/result.h"
#include "core/tuning.h"
#include "device/nvme_device.h"
#include "io/buffer_arena.h"
#include "io/direct_reader.h"
#include "io/io_engine.h"
#include "fault/health_monitor.h"
#include "io/throttle.h"
#include "obs/observability.h"
#include "sched/batch_scheduler.h"
#include "tenant/tenant.h"

namespace sdm {

class FaultInjector;
class RemoteDeviceChannel;
class ReplicationManager;
class SharedDeviceService;

struct SharedDeviceConfig {
  /// SM devices (specs define latency/IOPS; backing sizes the byte store).
  std::vector<DeviceSpec> sm_specs;
  std::vector<Bytes> sm_backing_bytes;
  /// Device-side knobs: queue depth, completion mode, scheduler batching,
  /// lane budgets, throttle. Tenant stores keep their own cache knobs.
  TuningConfig tuning;
  uint64_t seed = 42;

  // ---- Sharded runtime (src/common/sharded_runtime, src/serving) ----
  /// Engaged (stack != nullptr): build the HOST-SIDE SLICE of a sharded
  /// disaggregated runtime instead of a full device stack. The slice owns
  /// everything per-HOST — schedulers, readers, throttle, health view, and
  /// its own BufferArena (the per-shard/per-socket arena of the NUMA-arena
  /// ROADMAP item) — but no NvmeDevices: its per-port IoEngines ship
  /// doorbells through `channel` to the DEVICE shard's `stack`, which owns
  /// the physical devices. `sm_specs` must be empty. Table placement
  /// delegates to `stack`'s extent registry under `tenant` (this host's id
  /// there), so cross-host content dedup is byte-identical to the
  /// single-loop path. Placement runs at load time, before worker threads
  /// exist; at serving time the slice NEVER touches `stack` state — only
  /// the channel's messages cross shards.
  struct RemoteStack {
    SharedDeviceService* stack = nullptr;
    RemoteDeviceChannel* channel = nullptr;
    TenantId tenant = 0;
  };
  RemoteStack remote;

  // ---- Observability (src/obs) ----
  /// Per-loop observability instance for the stack's components (null =
  /// off). Must live on the same event loop as this service.
  Observability* obs = nullptr;
  /// Source prefix for the stack's metric names and trace tracks; devices
  /// get "<prefix>dev<i>/" ("svc/dev0/" on a fabric-attached stack).
  std::string obs_prefix;
};

class SharedDeviceService {
 public:
  /// One placed table extent on a shared device.
  struct Extent {
    size_t device = 0;
    Bytes offset = 0;
    /// True when this placement attached to bytes another tenant already
    /// wrote (no new device space, no write time).
    bool shared = false;
    SimDuration write_time;
    /// Registry id for replica routing and demand heat (0 = untracked).
    uint64_t id = 0;
  };

  SharedDeviceService(SharedDeviceConfig config, EventLoop* loop);
  ~SharedDeviceService();

  SharedDeviceService(const SharedDeviceService&) = delete;
  SharedDeviceService& operator=(const SharedDeviceService&) = delete;

  // ---- Tenants -------------------------------------------------------------

  /// Registers one tenant shard; the returned id scopes its throttle keys,
  /// scheduler attribution, and extent-dedup domain.
  TenantId RegisterTenant(std::string name, TenantClass cls);

  [[nodiscard]] size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] TenantClass tenant_class(TenantId id) const {
    return tenants_[id].cls;
  }
  [[nodiscard]] const std::string& tenant_name(TenantId id) const {
    return tenants_[id].name;
  }

  // ---- Table placement -----------------------------------------------------

  /// Places `bytes` for `tenant`: attaches to an existing extent when a
  /// DIFFERENT tenant already placed identical content under the same table
  /// name, otherwise allocates on the least-filled device and writes.
  [[nodiscard]] Result<Extent> PlaceTable(TenantId tenant, const std::string& table_name,
                                          std::span<const uint8_t> bytes);

  // ---- Self-healing: extent heat, replicas, routing (src/fault) ------------

  /// One replica of an extent's bytes on another device. Replica offsets
  /// preserve the primary offset modulo the 4KB block, so routing a span to
  /// its replica is a block-aligned shift.
  struct ReplicaLocation {
    size_t device = 0;
    Bytes offset = 0;
  };
  /// A routable replica: read the primary-space span shifted by `shift`
  /// (always a multiple of kBlockSize) on `device`.
  struct ReplicaRoute {
    size_t device = 0;
    int64_t shift = 0;
  };
  /// Where an extent's primary bytes live (the ReplicationManager's copy
  /// source).
  struct ExtentSpan {
    size_t device = 0;
    Bytes offset = 0;
    Bytes size = 0;
  };

  /// Bumps demand heat on extent `id` (no-op for 0/unknown). Lookup engines
  /// call this once per lookup that reaches the IO phase; the heat ranking
  /// decides which extents a sick endpoint re-replicates first. On a
  /// sharded slice this records into the SLICE's private view — serving
  /// threads never touch the device shard's registry.
  void RecordExtentDemand(uint64_t id);

  /// Healthiest replica route for `id` avoiding `avoid_device`; nullopt
  /// when the extent has no replica on a non-sick device.
  [[nodiscard]] std::optional<ReplicaRoute> FindReplicaRoute(uint64_t id,
                                                             size_t avoid_device) const;

  /// Publishes a replica of `id` at `loc` so FindReplicaRoute can reach it.
  /// Unknown ids are ignored (a sharded slice only tracks extents its own
  /// host placed or attached to).
  void AddReplicaRoute(uint64_t id, ReplicaLocation loc);

  /// Extent ids resident on `device`, hottest demand first (ties broken by
  /// id for determinism); extents that already have a replica are excluded.
  [[nodiscard]] std::vector<uint64_t> HottestExtentsOn(size_t device, size_t max) const;

  /// Least-filled non-sick device other than `source` — the replica target.
  [[nodiscard]] Result<size_t> FindReplicaTarget(size_t source) const;

  /// Bump-allocates space for a replica of `id` on `target`, preserving the
  /// primary offset modulo the block size (routed spans keep their block
  /// geometry). Local stacks only. Does not publish the route — the
  /// ReplicationManager does, after the copy lands.
  [[nodiscard]] Result<ReplicaLocation> AllocateReplica(uint64_t id, size_t target);

  /// Primary span of extent `id` (copy source for re-replication).
  [[nodiscard]] std::optional<ExtentSpan> ExtentInfoFor(uint64_t id) const;

  /// The re-replication engine (nullptr unless this is a local stack with
  /// tuning.enable_replication).
  [[nodiscard]] ReplicationManager* replication() { return replication_.get(); }

  // ---- Device stack --------------------------------------------------------

  /// Device PORTS this service exposes. A remote slice has no local
  /// devices but one engine/reader/scheduler port per remote device.
  [[nodiscard]] size_t device_count() const {
    return remote() ? remote_ports_ : sm_.size();
  }
  /// The physical device behind port `i` — the remote stack's in a sharded
  /// slice (safe only at load time and after the run: post-run report
  /// reads, never the serving path, which stays on this shard).
  [[nodiscard]] NvmeDevice& device(size_t i) {
    return remote() ? config_.remote.stack->device(i) : *sm_[i];
  }
  [[nodiscard]] bool remote() const { return config_.remote.stack != nullptr; }
  [[nodiscard]] IoEngine& io_engine(size_t i) { return *engines_[i]; }
  [[nodiscard]] DirectIoReader& reader(size_t i) { return *readers_[i]; }
  [[nodiscard]] BatchScheduler& scheduler(size_t i) { return *schedulers_[i]; }
  [[nodiscard]] TableThrottle& throttle() { return throttle_; }
  [[nodiscard]] BufferArena& buffer_arena() { return buffer_arena_; }
  [[nodiscard]] EventLoop* loop() { return loop_; }
  [[nodiscard]] const SharedDeviceConfig& config() const { return config_; }

  /// Installs a scripted fault injector (src/fault) on every device in the
  /// stack (media errors, stalls, fail-slow). The injector must outlive the
  /// service; nullptr uninstalls.
  void InstallFaultInjector(FaultInjector* injector);

  /// Per-device health scores fed by lookup IO outcomes; lookup engines
  /// consult it to shed work from sick endpoints (inert unless
  /// tuning.enable_health_monitor).
  [[nodiscard]] HealthMonitor& health() { return *health_; }

  // ---- Accounting ----------------------------------------------------------

  /// Physical bytes occupied on the devices (after extent dedup).
  [[nodiscard]] Bytes sm_used_bytes() const;
  /// Bytes tenants did NOT have to place because an extent was shared.
  [[nodiscard]] Bytes sm_dedup_saved_bytes() const { return dedup_saved_; }

  /// Scheduler effectiveness aggregated over every device.
  [[nodiscard]] CrossRequestIoStats cross_request_io_stats() const;
  /// One tenant's fair-share ledger aggregated over every device.
  [[nodiscard]] TenantIoShare tenant_io_share(TenantId id) const;
  /// Virtual time `tenant`'s reads spent queued for a throttle slot.
  [[nodiscard]] SimDuration throttle_queue_time(TenantId id) const {
    return throttle_.QueueTime(id);
  }

 private:
  struct Tenant {
    std::string name;
    TenantClass cls = TenantClass::kForeground;
  };
  /// Registry key of one placed table's content.
  struct ExtentKey {
    std::string name;
    Bytes size = 0;
    uint64_t content_hash = 0;
    auto operator<=>(const ExtentKey&) const = default;
  };
  struct ExtentEntry {
    Extent extent;
    std::set<TenantId> owners;  ///< tenants attached to these bytes
  };
  /// Replica-routing view of one placed extent. Local stacks hold the
  /// authoritative registry; sharded slices mirror entries for the extents
  /// their host placed (routes arrive via AddReplicaRoute posts).
  struct ExtentInfo {
    size_t device = 0;
    Bytes offset = 0;
    Bytes size = 0;
    uint64_t heat = 0;  ///< lookups that reached the IO phase on this extent
    std::vector<ReplicaLocation> replicas;
  };

  /// Replica-aware hedge target for a span on `device` (installed on the
  /// schedulers when replication is enabled).
  [[nodiscard]] std::optional<ReplicaRoute> ReplicaRouteForSpan(size_t device, Bytes begin,
                                                                Bytes end) const;

  SharedDeviceConfig config_;
  EventLoop* loop_;
  size_t remote_ports_ = 0;  ///< port count of a remote slice
  // Declared before the engines/readers that hold a pointer to it so it
  // outlives them on destruction.
  BufferArena buffer_arena_;
  std::vector<std::unique_ptr<NvmeDevice>> sm_;
  std::vector<std::unique_ptr<IoEngine>> engines_;
  std::vector<std::unique_ptr<DirectIoReader>> readers_;
  std::vector<std::unique_ptr<BatchScheduler>> schedulers_;
  TableThrottle throttle_;
  std::unique_ptr<HealthMonitor> health_;
  std::vector<Tenant> tenants_;
  std::vector<Bytes> sm_used_;  // per-device bump allocator
  std::map<ExtentKey, ExtentEntry> extents_;
  Bytes dedup_saved_ = 0;
  uint64_t next_extent_id_ = 1;
  std::map<uint64_t, ExtentInfo> extent_infos_;
  std::unique_ptr<ReplicationManager> replication_;
};

}  // namespace sdm
