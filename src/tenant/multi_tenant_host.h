// MultiTenantHost — co-locates several models on one simulated host
// (paper §5.3's capacity argument, now at IO granularity).
//
// Two modes:
//
//  - isolated (shared_device = false, the historical baseline): each
//    tenant is a full HostSimulation — own EventLoop, own SdmStore, own
//    devices. Tenants share nothing but the report; co-located traffic
//    can never single-flight across tenants. This is the "N independent
//    hosts squeezed into one chassis" model the paper argues against.
//
//  - shared (shared_device = true): ONE EventLoop, ONE SharedDeviceService.
//    Each tenant is a real shard — an SdmStore attached to the shared
//    device stack, with its own FM share, caches, and InferenceEngine —
//    and every tenant's Poisson arrivals interleave in virtual time, so
//    concurrent tenants' reads dedup / merge / single-flight in the shared
//    BatchSchedulers, identical table content dedups to one device extent,
//    and background-class tenants ride the scheduler's byte-budgeted
//    background lane (QoS: they cannot starve foreground p99).
//
// The report carries, per tenant, the fair-share ledger of the shared
// device: lane byte shares, single-flight hits served by other tenants'
// reads, and throttle queue time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serving/host.h"
#include "tenant/shared_device_service.h"
#include "tenant/tenant.h"

namespace sdm {

struct TenantReport {
  std::string model_name;
  TenantClass cls = TenantClass::kForeground;
  HostRunReport run;
  Bytes fm_used = 0;
  Bytes sm_used = 0;  ///< logical footprint (shared extents counted)

  // ---- Shared-device fair-share ledger (zeroes in isolated mode) ----
  uint64_t singleflight_hits = 0;  ///< runs served by an existing read
  uint64_t cross_tenant_hits = 0;  ///< ...owned by a DIFFERENT tenant
  Bytes cross_tenant_bytes_saved = 0;
  Bytes fg_lane_bytes = 0;  ///< bus bytes of foreground-lane SQEs owned
  Bytes bg_lane_bytes = 0;  ///< bus bytes of background-lane SQEs owned
  SimDuration throttle_queue_time;  ///< virtual time queued for IO slots

  [[nodiscard]] std::string Summary() const;
};

struct MultiTenantReport {
  std::vector<TenantReport> tenants;
  Bytes fm_total = 0;
  Bytes fm_capacity = 0;
  bool fits_in_fm = false;  ///< would the tenant set fit without SM?
  bool shared_device = false;

  // ---- Shared-device accounting (zeroes in isolated mode) ----
  Bytes sm_logical_bytes = 0;  ///< sum of tenant footprints
  Bytes sm_unique_bytes = 0;   ///< device bytes after extent dedup
  CrossRequestIoStats io;      ///< scheduler effectiveness, this run only
  uint64_t sm_device_reads = 0;  ///< physical device reads, this run only

  [[nodiscard]] std::string Summary() const;
};

/// Co-locates several (typically experimental) models on one host spec.
/// Each tenant gets an SDM sized to its share; the report shows the DRAM
/// the host would need without SM versus with it.
class MultiTenantHost {
 public:
  /// `shared_device` selects the real sharded path (see file header). The
  /// base config's tuning must pass ValidateForSharedDevice() then.
  MultiTenantHost(HostSimConfig base_config, uint64_t seed, bool shared_device = false);
  ~MultiTenantHost();

  /// Adds a tenant model; `fm_share` is its slice of the host FM budget and
  /// `cls` the scheduler lane its demand reads ride in shared mode.
  Status AddTenant(const ModelConfig& model, Bytes fm_share,
                   TenantClass cls = TenantClass::kForeground);

  /// Runs every tenant at `qps_per_tenant` for `queries_per_tenant`.
  /// Isolated mode runs tenants sequentially on private loops (exact: they
  /// share nothing); shared mode interleaves all tenants' arrivals on the
  /// common loop. Callable repeatedly; caches stay warm across runs.
  [[nodiscard]] MultiTenantReport Run(double qps_per_tenant, uint64_t queries_per_tenant);

  [[nodiscard]] size_t tenant_count() const {
    return shared_mode_ ? shards_.size() : isolated_.size();
  }
  [[nodiscard]] bool shared_device() const { return shared_mode_; }
  /// Shared-mode device stack (null in isolated mode).
  [[nodiscard]] SharedDeviceService* service() { return service_.get(); }
  /// Shared-mode shard store (isolated mode: the tenant sim's store).
  [[nodiscard]] SdmStore& tenant_store(size_t i);

  /// Observability exports (src/obs), shared mode only: the device stack
  /// records under "svc/", tenant i's store under "tenant<i>/". "{}" when
  /// tuning.obs is off or in isolated mode (each private host owns its
  /// Observability there).
  [[nodiscard]] std::string ObsMetricsJson();
  [[nodiscard]] std::string ObsTraceJson();
  [[nodiscard]] std::string ObsSloJson();

 private:
  struct Shard {  // shared mode: a real tenant shard on the common loop
    ModelConfig model;
    TenantClass cls = TenantClass::kForeground;
    TenantId id = 0;
    std::unique_ptr<SdmStore> store;
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<QueryGenerator> workload;
    LoadReport load_report;
  };
  struct IsolatedTenant {  // isolated mode: a whole private host
    ModelConfig model;
    TenantClass cls = TenantClass::kForeground;
    std::unique_ptr<HostSimulation> sim;
  };

  [[nodiscard]] MultiTenantReport RunIsolated(double qps, uint64_t queries);
  [[nodiscard]] MultiTenantReport RunShared(double qps, uint64_t queries);

  HostSimConfig base_config_;
  uint64_t seed_;
  bool shared_mode_;
  EventLoop loop_;  ///< shared-mode loop (unused in isolated mode)
  std::unique_ptr<Observability> obs_;  ///< shared mode; outlives the stacks
  std::unique_ptr<SharedDeviceService> service_;  ///< lazily built (shared mode)
  std::vector<Shard> shards_;
  std::vector<IsolatedTenant> isolated_;
};

}  // namespace sdm
