// Tenant identity and QoS classes for the multi-tenant sharded SdmStore
// (paper §5.3: many low-QPS experimental models co-locate on one host
// because cold tables tolerate SM latency).
//
// A tenant is one model/shard attached to a SharedDeviceService. Its
// TenantClass picks the BatchScheduler lane its demand reads ride:
//
//   kForeground : latency-sensitive serving. Demand reads use the normal
//                 demand lane — full flush rights, §4.1 throttle admission.
//   kBackground : batch scorers, refresh jobs, experiment replays. Demand
//                 reads ride the scheduler's low-priority background lane:
//                 they never trigger a size/deadline flush, are
//                 byte-budgeted (parked, never dropped — this is demand,
//                 not speculation), and are promoted into the foreground
//                 batch when a foreground run overlaps them.
//
// TenantId 0 is the implicit single tenant of an owned-device SdmStore, so
// standalone stores need no tenant plumbing at all.
#pragma once

#include <cstdint>

namespace sdm {

/// Dense per-SharedDeviceService tenant index (assigned by RegisterTenant).
using TenantId = uint32_t;

enum class TenantClass : uint8_t {
  kForeground,  ///< latency-sensitive; demand lane
  kBackground,  ///< throughput-tolerant; low-priority background lane
};

[[nodiscard]] inline const char* ToString(TenantClass c) {
  return c == TenantClass::kForeground ? "foreground" : "background";
}

}  // namespace sdm
