#include "tenant/shard_device_endpoint.h"

#include <cassert>
#include <utility>

namespace sdm {

ShardDeviceEndpoint::ShardDeviceEndpoint(SharedDeviceService* stack, size_t num_hosts)
    : stack_(stack),
      loop_(stack->loop()),
      queue_depth_(stack->config().tuning.io_queue_depth),
      ports_(stack->device_count()),
      cross_host_hits_(num_hosts, 0),
      cross_host_bytes_saved_(num_hosts, 0) {
  assert(!stack->remote());
  assert(queue_depth_ >= 1);
}

uint64_t ShardDeviceEndpoint::total_cross_host_hits() const {
  uint64_t total = 0;
  for (const uint64_t h : cross_host_hits_) total += h;
  return total;
}

void ShardDeviceEndpoint::OnDoorbell(size_t port, std::vector<Op> ops) {
  assert(port < ports_.size());
  Port& p = ports_[port];
  ++doorbells_;
  for (Op& op : ops) {
    ++ops_served_;
    const Key key{op.offset, op.length, op.sub_block};
    if (auto it = p.inflight.find(key); it != p.inflight.end()) {
      // Exact-span join: ride the read already queued or in flight. A
      // different submitting host makes this a cross-host hit — the bytes
      // the issuer's read saves this host from pulling over the fabric.
      InFlight& entry = it->second;
      if (op.host != entry.issuer_host) {
        ++cross_host_hits_[op.host];
        cross_host_bytes_saved_[op.host] += op.payload_bytes;
      }
      entry.waiters.push_back(std::move(op));
      continue;
    }
    InFlight entry;
    entry.buffer.resize(static_cast<size_t>(op.payload_bytes));
    entry.issuer_host = op.host;
    entry.waiters.push_back(std::move(op));
    p.inflight.emplace(key, std::move(entry));
    if (p.outstanding >= queue_depth_) {
      // Past the device's global queue-depth bound: wait in arrival order,
      // exactly like the single-loop shared engine's spill queue.
      ++spilled_;
      p.spill.push_back(key);
      continue;
    }
    Submit(port, key);
  }
}

void ShardDeviceEndpoint::Submit(size_t port, Key key) {
  Port& p = ports_[port];
  InFlight& entry = p.inflight.at(key);
  entry.submitted = true;
  ++p.outstanding;
  NvmeDevice::ReadRequest req;
  req.offset = std::get<0>(key);
  req.length = std::get<1>(key);
  req.sub_block = std::get<2>(key);
  req.dest = std::span<uint8_t>(entry.buffer);
  req.on_complete = [this, port, key](Status status, SimDuration /*device_latency*/) {
    OnComplete(port, key, std::move(status));
  };
  stack_->device(port).SubmitRead(std::move(req));
}

void ShardDeviceEndpoint::OnComplete(size_t port, Key key, Status status) {
  Port& p = ports_[port];
  --p.outstanding;
  assert(p.outstanding >= 0);

  // Refill the device queue before delivering, like the engine does.
  if (!p.spill.empty() && p.outstanding < queue_depth_) {
    const Key next = p.spill.front();
    p.spill.pop_front();
    Submit(port, next);
  }

  // Interrupt-mode delivery delay is paid HERE, device-side — where the
  // single-loop shared engine's completion path paid it — so the response
  // hits the fabric at the same instant as in single-loop mode. The host
  // engine charges its reap CPU on arrival but adds no second delay.
  const IoEngineConfig& ecfg = stack_->io_engine(port).config();
  const SimDuration delay = ecfg.completion_mode == CompletionMode::kInterrupt
                                ? ecfg.interrupt_delay
                                : SimDuration(0);
  if (delay > SimDuration(0)) {
    loop_->ScheduleAfter(delay,
                         [this, port, key, status = std::move(status)]() mutable {
                           Finish(port, key, std::move(status));
                         });
  } else {
    Finish(port, key, std::move(status));
  }
}

void ShardDeviceEndpoint::Finish(size_t port, Key key, Status status) {
  Port& p = ports_[port];
  auto node = p.inflight.extract(key);
  assert(!node.empty());
  InFlight& entry = node.mapped();
  // Fan out in arrival order; every waiter's response message gets its own
  // payload copy (each crosses shards independently). The last waiter
  // steals the DMA buffer. Errors fan out with no payload — the response
  // transfer still crosses and is byte-accounted by the channel.
  for (size_t i = 0; i < entry.waiters.size(); ++i) {
    Op& op = entry.waiters[i];
    std::vector<uint8_t> payload;
    if (status.ok()) {
      payload = (i + 1 == entry.waiters.size()) ? std::move(entry.buffer)
                                                : entry.buffer;
    }
    op.respond(status, std::move(payload));
  }
}

}  // namespace sdm
