#include "tenant/shared_device_service.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/rng.h"
#include "fault/fault_injector.h"
#include "fault/replication_manager.h"

namespace sdm {

namespace {

/// FNV-1a over the table image — the dedup registry's content fingerprint.
/// Collisions are guarded by the (name, size) key components; tables here
/// are deterministic generator output, not adversarial input.
uint64_t ContentHash(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SharedDeviceService::SharedDeviceService(SharedDeviceConfig config, EventLoop* loop)
    : config_(std::move(config)),
      loop_(loop),
      throttle_(config_.tuning.throttle, loop) {
  assert(loop != nullptr);
  assert(config_.sm_specs.size() == config_.sm_backing_bytes.size());
  assert(!remote() || config_.sm_specs.empty());
  assert(!remote() || config_.remote.channel != nullptr);

  Rng rng(config_.seed);
  const size_t ports =
      remote() ? config_.remote.stack->device_count() : config_.sm_specs.size();
  remote_ports_ = remote() ? ports : 0;
  for (size_t i = 0; i < ports; ++i) {
    if (!remote()) {
      DeviceSpec spec = config_.sm_specs[i];
      if (!config_.tuning.sub_block_reads) {
        // Tuning knob: force the plain block path even on capable devices.
        spec.supports_sub_block = false;
      }
      sm_.push_back(std::make_unique<NvmeDevice>(spec, config_.sm_backing_bytes[i],
                                                 loop_, rng.Next()));
      // Per-4KB-block checksums, stamped at write and verified at
      // bounce-buffer fill (self-healing integrity layer). Off = byte-
      // identical device behaviour.
      if (config_.tuning.enable_checksums) sm_.back()->set_checksums(true);
    }
    IoEngineConfig ecfg;
    ecfg.queue_depth = config_.tuning.io_queue_depth;
    ecfg.completion_mode = config_.tuning.completion_mode;
    if (remote()) {
      // Host-side slice: the engine's "device" is the remote stack's — the
      // immutable spec source for readers — but submissions ride the
      // channel to the device shard instead of touching it.
      engines_.push_back(std::make_unique<IoEngine>(&config_.remote.stack->device(i),
                                                    loop_, ecfg));
      engines_.back()->set_remote_channel(config_.remote.channel, i);
    } else {
      engines_.push_back(std::make_unique<IoEngine>(sm_.back().get(), loop_, ecfg));
    }
    DirectReaderConfig rcfg;
    rcfg.sub_block = config_.tuning.sub_block_reads;
    rcfg.retry_backoff_base = config_.tuning.retry_backoff_base;
    readers_.push_back(
        std::make_unique<DirectIoReader>(engines_.back().get(), rcfg, &buffer_arena_));
    BatchSchedulerConfig bcfg;
    bcfg.cross_request = config_.tuning.cross_request_batching;
    bcfg.max_batch_sqes = config_.tuning.max_batch_sqes;
    bcfg.max_batch_delay = config_.tuning.max_batch_delay;
    bcfg.max_coalesce_bytes = config_.tuning.max_coalesce_bytes;
    bcfg.coalesce_gap_bytes = config_.tuning.coalesce_gap_bytes;
    bcfg.prefetch_max_inflight_bytes = config_.tuning.prefetch_max_inflight_bytes;
    bcfg.background_max_inflight_bytes = config_.tuning.background_max_inflight_bytes;
    bcfg.background_flush_delay = config_.tuning.background_flush_delay;
    bcfg.io_deadline = config_.tuning.io_deadline;
    bcfg.hedge_latency_factor = config_.tuning.hedge_latency_factor;
    bcfg.hedge_min_samples = config_.tuning.hedge_min_samples;
    schedulers_.push_back(std::make_unique<BatchScheduler>(engines_.back().get(),
                                                           &buffer_arena_, loop_, bcfg));
    if (config_.obs != nullptr) {
      const std::string dev_name =
          config_.obs_prefix + "dev" + std::to_string(i) + "/";
      engines_.back()->set_obs(config_.obs, dev_name);
      schedulers_.back()->set_obs(config_.obs, dev_name);
    }
  }
  sm_used_.assign(sm_.size(), 0);

  HealthMonitorConfig hcfg;
  hcfg.enabled = config_.tuning.enable_health_monitor;
  hcfg.sick_threshold = config_.tuning.health_sick_threshold;
  hcfg.window = config_.tuning.health_window;
  hcfg.probe_interval = config_.tuning.health_probe_interval;
  health_ = std::make_unique<HealthMonitor>(hcfg, ports);
  if (config_.obs != nullptr) {
    health_->set_obs(config_.obs, loop_, config_.obs_prefix);
  }

  if (config_.tuning.enable_replication) {
    // Cross-replica hedging: a scheduler whose demand read crosses its p99
    // deadline may hedge onto the span's replica instead of re-queueing on
    // the (possibly sick) primary.
    for (size_t i = 0; i < schedulers_.size(); ++i) {
      schedulers_[i]->set_replica_peer(
          [this, i](Bytes begin, Bytes end)
              -> std::optional<BatchScheduler::ReplicaPeer> {
            const auto route = ReplicaRouteForSpan(i, begin, end);
            if (!route.has_value()) return std::nullopt;
            return BatchScheduler::ReplicaPeer{engines_[route->device].get(),
                                               route->shift};
          });
    }
    if (!remote()) {
      // The stack owns the devices, so it owns the re-replication engine;
      // sharded slices instead forward their sickness transitions to the
      // device shard's manager (src/serving wires that path).
      replication_ = std::make_unique<ReplicationManager>(this, loop_);
      if (config_.obs != nullptr) {
        replication_->set_obs(config_.obs, config_.obs_prefix);
      }
      health_->SetSickTransitionListener(
          [this](size_t endpoint) { replication_->OnEndpointSick(endpoint); });
    }
  }
}

SharedDeviceService::~SharedDeviceService() = default;

void SharedDeviceService::RecordExtentDemand(uint64_t id) {
  if (id == 0) return;
  if (auto it = extent_infos_.find(id); it != extent_infos_.end()) ++it->second.heat;
}

std::optional<SharedDeviceService::ReplicaRoute> SharedDeviceService::FindReplicaRoute(
    uint64_t id, size_t avoid_device) const {
  const auto it = extent_infos_.find(id);
  if (it == extent_infos_.end()) return std::nullopt;
  for (const ReplicaLocation& loc : it->second.replicas) {
    if (loc.device == avoid_device || health_->Sick(loc.device)) continue;
    return ReplicaRoute{loc.device, static_cast<int64_t>(loc.offset) -
                                        static_cast<int64_t>(it->second.offset)};
  }
  return std::nullopt;
}

void SharedDeviceService::AddReplicaRoute(uint64_t id, ReplicaLocation loc) {
  if (auto it = extent_infos_.find(id); it != extent_infos_.end()) {
    it->second.replicas.push_back(loc);
  }
}

std::vector<uint64_t> SharedDeviceService::HottestExtentsOn(size_t device,
                                                            size_t max) const {
  std::vector<std::pair<uint64_t, uint64_t>> heat_id;  // (heat, id)
  for (const auto& [id, info] : extent_infos_) {
    if (info.device != device || !info.replicas.empty()) continue;
    heat_id.emplace_back(info.heat, id);
  }
  std::sort(heat_id.begin(), heat_id.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<uint64_t> out;
  for (const auto& [heat, id] : heat_id) {
    if (out.size() >= max) break;
    out.push_back(id);
  }
  return out;
}

Result<size_t> SharedDeviceService::FindReplicaTarget(size_t source) const {
  std::optional<size_t> best;
  for (size_t i = 0; i < sm_.size(); ++i) {
    if (i == source || health_->Sick(i)) continue;
    if (!best.has_value() || sm_used_[i] < sm_used_[*best]) best = i;
  }
  if (!best.has_value()) {
    return ResourceExhaustedError("no healthy replica target device available");
  }
  return *best;
}

Result<SharedDeviceService::ReplicaLocation> SharedDeviceService::AllocateReplica(
    uint64_t id, size_t target) {
  assert(!remote() && "replica space lives on the device-owning stack");
  const auto it = extent_infos_.find(id);
  if (it == extent_infos_.end()) return NotFoundError("unknown extent id");
  const ExtentInfo& info = it->second;
  // Round the bump cursor up to the next offset congruent with the primary
  // offset mod kBlockSize: routed spans then shift by a whole number of
  // blocks and keep their block geometry (and checksum block boundaries).
  const Bytes base = sm_used_[target];
  const Bytes want = info.offset % kBlockSize;
  const Bytes off = base + (want + kBlockSize - base % kBlockSize) % kBlockSize;
  if (off + info.size > sm_[target]->backing_size()) {
    return ResourceExhaustedError("replica target device over-committed");
  }
  sm_used_[target] = off + info.size;
  return ReplicaLocation{target, off};
}

std::optional<SharedDeviceService::ExtentSpan> SharedDeviceService::ExtentInfoFor(
    uint64_t id) const {
  const auto it = extent_infos_.find(id);
  if (it == extent_infos_.end()) return std::nullopt;
  return ExtentSpan{it->second.device, it->second.offset, it->second.size};
}

std::optional<SharedDeviceService::ReplicaRoute> SharedDeviceService::ReplicaRouteForSpan(
    size_t device, Bytes begin, Bytes end) const {
  for (const auto& [id, info] : extent_infos_) {
    if (info.device != device || info.replicas.empty()) continue;
    if (begin < info.offset || end > info.offset + info.size) continue;
    return FindReplicaRoute(id, device);
  }
  return std::nullopt;
}

void SharedDeviceService::InstallFaultInjector(FaultInjector* injector) {
  for (size_t i = 0; i < sm_.size(); ++i) {
    sm_[i]->set_fault_injector(injector, static_cast<int>(i));
  }
}

TenantId SharedDeviceService::RegisterTenant(std::string name, TenantClass cls) {
  tenants_.push_back(Tenant{std::move(name), cls});
  return static_cast<TenantId>(tenants_.size() - 1);
}

Result<SharedDeviceService::Extent> SharedDeviceService::PlaceTable(
    TenantId tenant, const std::string& table_name, std::span<const uint8_t> bytes) {
  if (remote()) {
    // Host-side slice: the device shard's stack owns space and the dedup
    // registry; place there under this HOST's identity so replicas dedup
    // across hosts exactly like the single-loop path. Load-time only.
    (void)tenant;  // the local single-tenant id; the stack keys on the host
    auto placed =
        config_.remote.stack->PlaceTable(config_.remote.tenant, table_name, bytes);
    if (placed.ok() && placed.value().id != 0) {
      // Mirror the extent into this slice's private routing view (load-time
      // only); replica routes arrive later as cross-shard AddReplicaRoute
      // posts, and demand heat accrues here, never on the stack.
      const Extent& e = placed.value();
      extent_infos_.try_emplace(e.id,
                                ExtentInfo{e.device, e.offset, bytes.size(), 0, {}});
    }
    return placed;
  }
  if (sm_.empty()) return FailedPreconditionError("no SM devices configured");

  const ExtentKey key{table_name, bytes.size(), ContentHash(bytes)};
  if (auto it = extents_.find(key); it != extents_.end()) {
    // Cross-tenant dedup only: a tenant re-loading identical content (two
    // copies in one model) gets its own extent, matching what an
    // owned-device store would do.
    if (!it->second.owners.contains(tenant)) {
      it->second.owners.insert(tenant);
      dedup_saved_ += bytes.size();
      Extent ext = it->second.extent;
      ext.shared = true;
      ext.write_time = SimDuration{};
      SDM_LOG_INFO << "shared extent: tenant " << tenant << " attached to "
                   << table_name << " (" << AsMiB(bytes.size()) << " MiB deduped)";
      return ext;
    }
  }

  // Least-filled device gets the table (simple balance; tables are the
  // striping unit, as in the paper's two-SSD hosts).
  size_t best = 0;
  for (size_t i = 1; i < sm_.size(); ++i) {
    if (sm_used_[i] < sm_used_[best]) best = i;
  }
  if (sm_used_[best] + bytes.size() > sm_[best]->backing_size()) {
    return ResourceExhaustedError("SM device over-committed by table " + table_name);
  }
  Extent ext;
  ext.device = best;
  ext.offset = sm_used_[best];
  auto wrote = sm_[best]->Write(ext.offset, bytes);
  if (!wrote.ok()) return wrote.status();
  ext.write_time = wrote.value();
  ext.id = next_extent_id_++;
  extent_infos_.emplace(ext.id,
                        ExtentInfo{ext.device, ext.offset, bytes.size(), 0, {}});
  sm_used_[best] += bytes.size();
  // A same-tenant duplicate (owner re-placing an identical table) keeps its
  // fresh extent PRIVATE: the registry entry — and any co-tenants attached
  // to it — must not be clobbered.
  extents_.try_emplace(key, ExtentEntry{ext, {tenant}});
  return ext;
}

Bytes SharedDeviceService::sm_used_bytes() const {
  if (remote()) return config_.remote.stack->sm_used_bytes();
  Bytes total = 0;
  for (const Bytes b : sm_used_) total += b;
  return total;
}

CrossRequestIoStats SharedDeviceService::cross_request_io_stats() const {
  CrossRequestIoStats agg;
  for (const auto& s : schedulers_) {
    const CrossRequestIoStats one = s->Snapshot();
    agg.device_reads += one.device_reads;
    agg.cross_request_merges += one.cross_request_merges;
    agg.singleflight_hits += one.singleflight_hits;
    agg.singleflight_bytes_saved += one.singleflight_bytes_saved;
    agg.flushes += one.flushes;
    agg.prefetch_reads += one.prefetch_reads;
    agg.prefetch_dropped += one.prefetch_dropped;
    agg.prefetch_promoted += one.prefetch_promoted;
    agg.background_reads += one.background_reads;
    agg.background_parked += one.background_parked;
    agg.background_promoted += one.background_promoted;
    agg.deadline_expired += one.deadline_expired;
    agg.hedges_issued += one.hedges_issued;
    agg.hedges_won += one.hedges_won;
  }
  return agg;
}

TenantIoShare SharedDeviceService::tenant_io_share(TenantId id) const {
  TenantIoShare agg;
  for (const auto& s : schedulers_) {
    const TenantIoShare one = s->tenant_share(id);
    agg.demand_reads += one.demand_reads;
    agg.demand_bytes += one.demand_bytes;
    agg.background_reads += one.background_reads;
    agg.background_bytes += one.background_bytes;
    agg.prefetch_bytes += one.prefetch_bytes;
    agg.singleflight_hits += one.singleflight_hits;
    agg.cross_tenant_hits += one.cross_tenant_hits;
    agg.cross_tenant_bytes_saved += one.cross_tenant_bytes_saved;
  }
  return agg;
}

}  // namespace sdm
