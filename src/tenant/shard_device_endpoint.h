// ShardDeviceEndpoint — the device shard's doorbell server in the sharded
// simulation runtime (src/common/sharded_runtime.h).
//
// In single-loop disaggregated mode every host's reads funnel through ONE
// shared per-device BatchScheduler + IoEngine, which is where cross-host
// single-flight and the global queue-depth bound live. The sharded runtime
// moves schedulers host-side (each host shard owns its stack — that is
// what makes shards independent within a window), so the endpoint provides
// the device-side halves those shared components used to:
//
//   - the PER-DEVICE QUEUE-DEPTH BOUND across all hosts: ops beyond
//     tuning.io_queue_depth wait in a FIFO exactly like the shared
//     engine's spill queue;
//   - CROSS-HOST SINGLE-FLIGHT at device granularity: an op whose exact
//     (offset, length, sub_block) span is already in flight — or queued —
//     joins it instead of re-reading; when the joiner is a DIFFERENT host
//     than the issuer, that is a cross-host hit (the counterpart of the
//     shared scheduler's cross_tenant_hits). Exact-span matching catches
//     the common case — replicas issue identical block-aligned runs for
//     shared hot blocks — without re-implementing the scheduler's span
//     cover logic device-side;
//   - completion fan-out with ONE interrupt per device completion
//     (mirroring the engine's reap-then-deliver), each subscriber's
//     payload copied into its own response message.
//
// Single-threaded on the device shard's loop: doorbells arrive as sorted
// cross-shard messages, device completions are local events. Responses
// leave through per-host Respond callbacks supplied by the caller (the
// sharded cluster glue), which own the response-direction fabric timing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "common/event_loop.h"
#include "common/result.h"
#include "common/types.h"
#include "tenant/shared_device_service.h"

namespace sdm {

class ShardDeviceEndpoint {
 public:
  /// Delivers one op's outcome toward its host shard. Runs on the DEVICE
  /// loop at completion time; the implementation pays the response fabric
  /// hop and posts cross-shard. `payload` is empty on error (the transfer
  /// still crosses — byte accounting uses the op's payload_bytes).
  using Respond = std::function<void(Status status, std::vector<uint8_t> payload)>;

  /// One SQE of an arriving doorbell.
  struct Op {
    Bytes offset = 0;
    Bytes length = 0;
    bool sub_block = false;
    Bytes payload_bytes = 0;  ///< NvmeDevice::BusBytes of the request
    size_t host = 0;          ///< submitting host (cross-host attribution)
    Respond respond;
  };

  /// `stack` owns the physical devices; must outlive the endpoint.
  /// `num_hosts` sizes the per-host attribution ledgers.
  ShardDeviceEndpoint(SharedDeviceService* stack, size_t num_hosts);

  ShardDeviceEndpoint(const ShardDeviceEndpoint&) = delete;
  ShardDeviceEndpoint& operator=(const ShardDeviceEndpoint&) = delete;

  /// Processes one doorbell for device `port` (called on the device loop
  /// at the doorbell message's delivery time). Ops run in vector order.
  void OnDoorbell(size_t port, std::vector<Op> ops);

  // ---- Attribution ---------------------------------------------------------

  /// Ops of `host` served by a read ANOTHER host paid for (the sharded
  /// counterpart of the shared scheduler's cross_tenant_hits).
  [[nodiscard]] uint64_t cross_host_hits(size_t host) const {
    return cross_host_hits_[host];
  }
  [[nodiscard]] Bytes cross_host_bytes_saved(size_t host) const {
    return cross_host_bytes_saved_[host];
  }
  [[nodiscard]] uint64_t total_cross_host_hits() const;
  [[nodiscard]] uint64_t doorbells() const { return doorbells_; }
  [[nodiscard]] uint64_t ops_served() const { return ops_served_; }
  [[nodiscard]] uint64_t spilled() const { return spilled_; }

 private:
  using Key = std::tuple<Bytes, Bytes, bool>;  // offset, length, sub_block

  struct InFlight {
    std::vector<uint8_t> buffer;  ///< device DMA target, payload_bytes big
    std::vector<Op> waiters;      ///< waiters[0] is the issuer
    size_t issuer_host = 0;
    bool submitted = false;  ///< false while waiting in the spill FIFO
  };

  struct Port {
    std::map<Key, InFlight> inflight;  ///< submitted + spilled ops
    std::deque<Key> spill;             ///< FIFO beyond the queue-depth bound
    int outstanding = 0;
  };

  void Submit(size_t port, Key key);
  void OnComplete(size_t port, Key key, Status status);
  /// Fans the finished read out to every waiter and retires the entry.
  void Finish(size_t port, Key key, Status status);

  SharedDeviceService* stack_;
  EventLoop* loop_;
  int queue_depth_;
  std::vector<Port> ports_;
  std::vector<uint64_t> cross_host_hits_;
  std::vector<Bytes> cross_host_bytes_saved_;
  uint64_t doorbells_ = 0;
  uint64_t ops_served_ = 0;
  uint64_t spilled_ = 0;
};

}  // namespace sdm
