#include "tenant/multi_tenant_host.h"

#include <cassert>
#include <cstdio>

#include "common/kv_format.h"
#include "common/rng.h"
#include "serving/arrival_loop.h"

namespace sdm {

namespace {

uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-tenant workload seed, derived identically in both modes so an
/// isolated-vs-shared sweep serves the same per-tenant query streams.
uint64_t TenantWorkloadSeed(const WorkloadConfig& base, size_t tenant_index) {
  return base.seed ^ Mix64(0x7e0a + tenant_index);
}

}  // namespace

MultiTenantHost::MultiTenantHost(HostSimConfig base_config, uint64_t seed,
                                 bool shared_device)
    : base_config_(std::move(base_config)), seed_(seed), shared_mode_(shared_device) {}

MultiTenantHost::~MultiTenantHost() = default;

SdmStore& MultiTenantHost::tenant_store(size_t i) {
  return shared_mode_ ? *shards_[i].store : isolated_[i].sim->store();
}

Status MultiTenantHost::AddTenant(const ModelConfig& model, Bytes fm_share,
                                  TenantClass cls) {
  if (!shared_mode_) {
    HostSimConfig cfg = base_config_;
    cfg.fm_capacity = fm_share;
    cfg.seed = seed_ ^ Mix64(isolated_.size() + 0x7e0a);
    cfg.workload.seed = TenantWorkloadSeed(base_config_.workload, isolated_.size());
    IsolatedTenant t;
    t.model = model;
    t.cls = cls;
    t.sim = std::make_unique<HostSimulation>(cfg);
    if (Status s = t.sim->LoadModel(model); !s.ok()) return s;
    isolated_.push_back(std::move(t));
    return Status::Ok();
  }

  // ---- Shared mode: a real shard on the common device stack ----
  if (Status s = base_config_.tuning.ValidateForSharedDevice(); !s.ok()) return s;
  if (service_ == nullptr) {
    SharedDeviceConfig dcfg;
    for (const auto& ssd : base_config_.host.ssds) {
      dcfg.sm_specs.push_back(ssd);
      dcfg.sm_backing_bytes.push_back(base_config_.sm_backing_per_device);
    }
    if (dcfg.sm_specs.empty()) {
      return FailedPreconditionError("shared-device multi-tenancy needs a host with SSDs");
    }
    dcfg.tuning = base_config_.tuning;
    dcfg.seed = seed_;
    if (base_config_.tuning.obs.enabled()) {
      obs_ = std::make_unique<Observability>(base_config_.tuning.obs);
      dcfg.obs = obs_.get();
      dcfg.obs_prefix = "svc/";
    }
    service_ = std::make_unique<SharedDeviceService>(std::move(dcfg), &loop_);
  }

  Shard shard;
  shard.model = model;
  shard.cls = cls;
  shard.id = service_->RegisterTenant(model.name, cls);

  SdmStoreConfig scfg;
  scfg.fm_capacity = fm_share;
  scfg.tuning = base_config_.tuning;
  scfg.seed = seed_ ^ Mix64(shards_.size() + 0x7e0a);
  scfg.shared_device = service_.get();
  scfg.tenant_id = shard.id;
  scfg.tenant_class = cls;
  if (obs_ != nullptr) {
    scfg.obs = obs_.get();
    scfg.obs_prefix = "tenant" + std::to_string(shards_.size()) + "/";
  }
  shard.store = std::make_unique<SdmStore>(scfg, &loop_);

  auto report = ModelLoader::Load(model, base_config_.loader, shard.store.get());
  if (!report.ok()) return report.status();
  shard.load_report = std::move(report).value();

  InferenceConfig icfg = base_config_.inference;
  icfg.accelerator = base_config_.host.accelerator;
  icfg.dense.flops_per_sec = base_config_.host.dense_flops;
  if (icfg.max_concurrent_queries <= 0) {
    icfg.max_concurrent_queries = base_config_.host.cores();
  }
  shard.engine = std::make_unique<InferenceEngine>(shard.store.get(), model, icfg);

  WorkloadConfig wcfg = base_config_.workload;
  wcfg.seed = TenantWorkloadSeed(base_config_.workload, shards_.size());
  shard.workload = std::make_unique<QueryGenerator>(model, wcfg);

  shards_.push_back(std::move(shard));
  return Status::Ok();
}

MultiTenantReport MultiTenantHost::Run(double qps_per_tenant,
                                       uint64_t queries_per_tenant) {
  return shared_mode_ ? RunShared(qps_per_tenant, queries_per_tenant)
                      : RunIsolated(qps_per_tenant, queries_per_tenant);
}

MultiTenantReport MultiTenantHost::RunIsolated(double qps, uint64_t queries) {
  MultiTenantReport report;
  report.fm_capacity = base_config_.fm_capacity;
  for (auto& t : isolated_) {
    TenantReport tr;
    tr.model_name = t.model.name;
    tr.cls = t.cls;
    tr.run = t.sim->Run(qps, queries);
    tr.fm_used = t.sim->store().fm_direct_bytes() + t.sim->store().fm_mapping_bytes() +
                 (t.sim->store().row_cache() != nullptr
                      ? t.sim->store().row_cache()->capacity()
                      : 0);
    tr.sm_used = t.sim->store().sm_used_bytes();
    tr.throttle_queue_time = t.sim->store().throttle().QueueTime(0);
    report.fm_total += tr.fm_used;
    report.sm_logical_bytes += tr.sm_used;
    report.tenants.push_back(std::move(tr));
  }
  report.sm_unique_bytes = report.sm_logical_bytes;  // isolation: no dedup
  // Without SM every tenant's SM bytes would need FM instead.
  const Bytes fm_needed_without_sm = report.fm_total + report.sm_logical_bytes;
  report.fits_in_fm = fm_needed_without_sm <= report.fm_capacity;
  return report;
}

MultiTenantReport MultiTenantHost::RunShared(double qps, uint64_t queries) {
  assert(qps > 0);
  MultiTenantReport report;
  report.shared_device = true;
  report.fm_capacity = base_config_.fm_capacity;
  if (shards_.empty()) return report;

  // ---- Per-run snapshots (counters are cumulative across runs) ----
  struct Snapshot {
    uint64_t cache_hits0 = 0;
    uint64_t cache_miss0 = 0;
    TenantIoShare share0;
    SimDuration queue_time0;
  };
  std::vector<Snapshot> snaps(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (DualRowCache* rc = shards_[i].store->row_cache(); rc != nullptr) {
      snaps[i].cache_hits0 = rc->stats().hits;
      snaps[i].cache_miss0 = rc->stats().misses;
    }
    snaps[i].share0 = service_->tenant_io_share(shards_[i].id);
    snaps[i].queue_time0 = service_->throttle_queue_time(shards_[i].id);
  }
  uint64_t sm_reads0 = 0;
  for (size_t d = 0; d < service_->device_count(); ++d) {
    sm_reads0 += service_->device(d).stats().CounterValue("reads");
  }
  const CrossRequestIoStats io0 = service_->cross_request_io_stats();

  // ---- Interleave every tenant's open-loop Poisson arrivals ----
  // (The loop itself lives in serving/arrival_loop.h; the cluster's
  // disaggregated mode generalizes it with a non-identity route.)
  std::vector<ArrivalParticipant> participants;
  participants.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    participants.push_back(ArrivalParticipant{shards_[i].engine.get(),
                                              shards_[i].workload.get(),
                                              seed_ ^ Mix64(i + 1) ^ 0xa11e});
  }
  const SimTime t_begin = loop_.Now();
  std::vector<ArrivalStats> states = RunInterleavedArrivals(
      loop_, participants, qps, queries,
      [](size_t source, const Query&) { return source; });
  const SimTime t_end = loop_.Now();
  const double span_s = (t_end - t_begin).seconds();

  // ---- Reports ----
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    ArrivalStats& state = states[i];
    TenantReport tr;
    tr.model_name = shard.model.name;
    tr.cls = shard.cls;
    tr.run.queries_completed = state.completed;
    tr.run.queries_served = state.served;
    tr.run.queries_degraded = state.degraded;
    tr.run.rows_failed = state.rows_failed;
    tr.run.offered_qps = qps;
    tr.run.achieved_qps =
        span_s > 0 ? static_cast<double>(state.completed) / span_s : 0;
    tr.run.p50 = SimDuration(state.latencies.P50());
    tr.run.p95 = SimDuration(state.latencies.P95());
    tr.run.p99 = SimDuration(state.latencies.P99());
    tr.run.mean = SimDuration(static_cast<int64_t>(state.latencies.mean()));
    if (DualRowCache* rc = shard.store->row_cache(); rc != nullptr) {
      const uint64_t h = rc->stats().hits - snaps[i].cache_hits0;
      const uint64_t m = rc->stats().misses - snaps[i].cache_miss0;
      tr.run.row_cache_hit_rate =
          (h + m) == 0 ? 0 : static_cast<double>(h) / static_cast<double>(h + m);
    }
    const TenantIoShare share =
        service_->tenant_io_share(shard.id).Since(snaps[i].share0);
    tr.singleflight_hits = share.singleflight_hits;
    tr.cross_tenant_hits = share.cross_tenant_hits;
    tr.cross_tenant_bytes_saved = share.cross_tenant_bytes_saved;
    tr.fg_lane_bytes = share.demand_bytes;
    tr.bg_lane_bytes = share.background_bytes;
    tr.run.singleflight_hits = tr.singleflight_hits;
    tr.throttle_queue_time =
        service_->throttle_queue_time(shard.id) - snaps[i].queue_time0;
    tr.fm_used = shard.store->fm_direct_bytes() + shard.store->fm_mapping_bytes() +
                 (shard.store->row_cache() != nullptr
                      ? shard.store->row_cache()->capacity()
                      : 0);
    tr.sm_used = shard.store->sm_used_bytes();
    report.fm_total += tr.fm_used;
    report.sm_logical_bytes += tr.sm_used;
    report.tenants.push_back(std::move(tr));
  }

  report.sm_unique_bytes = service_->sm_used_bytes();
  uint64_t sm_reads1 = 0;
  for (size_t d = 0; d < service_->device_count(); ++d) {
    sm_reads1 += service_->device(d).stats().CounterValue("reads");
  }
  report.sm_device_reads = sm_reads1 - sm_reads0;
  report.io = service_->cross_request_io_stats().Since(io0);

  const Bytes fm_needed_without_sm = report.fm_total + report.sm_logical_bytes;
  report.fits_in_fm = fm_needed_without_sm <= report.fm_capacity;
  return report;
}

std::string TenantReport::Summary() const {
  KvFormatter f;
  f.Raw(model_name)
      .Raw(std::string("[") + ToString(cls) + "]")
      .Kv("qps", "%.0f/%.0f", run.achieved_qps, run.offered_qps)
      .Kv("p95", "%.2fms", run.p95.millis())
      .Kv("p99", "%.2fms", run.p99.millis())
      .Kv("hit", "%.1f%%", run.row_cache_hit_rate * 100)
      .Kv("sf", "%llu", static_cast<unsigned long long>(singleflight_hits))
      .Kv("xsf", "%llu", static_cast<unsigned long long>(cross_tenant_hits))
      .Kv("fg", "%lluKiB", static_cast<unsigned long long>(fg_lane_bytes / kKiB))
      .Kv("bg", "%lluKiB", static_cast<unsigned long long>(bg_lane_bytes / kKiB))
      .Kv("tq", "%.0fus", throttle_queue_time.micros());
  return f.str();
}

std::string MultiTenantHost::ObsMetricsJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->MetricsJson();
}

std::string MultiTenantHost::ObsTraceJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->TraceJson();
}

std::string MultiTenantHost::ObsSloJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->SloJson();
}

std::string MultiTenantReport::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "tenants=%zu mode=%s reads=%llu sf=%llu xmerge=%llu bg=%llu(parked %llu, "
      "promoted %llu) sm=%.1f/%.1fMiB dedup=%.1fMiB occ=%.1f",
      tenants.size(), shared_device ? "shared" : "isolated",
      static_cast<unsigned long long>(sm_device_reads),
      static_cast<unsigned long long>(io.singleflight_hits),
      static_cast<unsigned long long>(io.cross_request_merges),
      static_cast<unsigned long long>(io.background_reads),
      static_cast<unsigned long long>(io.background_parked),
      static_cast<unsigned long long>(io.background_promoted),
      AsMiB(sm_unique_bytes), AsMiB(sm_logical_bytes),
      AsMiB(sm_logical_bytes - sm_unique_bytes), io.BatchOccupancy());
  return buf;
}

}  // namespace sdm
