#include "sched/batch_scheduler.h"

#include <algorithm>
#include <cassert>

#include "device/nvme_device.h"

namespace sdm {

BatchScheduler::BatchScheduler(IoEngine* engine, BufferArena* arena, EventLoop* loop,
                               BatchSchedulerConfig config)
    : engine_(engine), arena_(arena), loop_(loop), config_(config) {
  assert(engine != nullptr);
  assert(arena != nullptr);
  assert(loop != nullptr);
  assert(config.max_batch_sqes >= 1);
  enqueued_ = stats_.GetCounter("enqueued");
  device_reads_ = stats_.GetCounter("device_reads");
  cross_request_merges_ = stats_.GetCounter("cross_request_merges");
  singleflight_hits_ = stats_.GetCounter("singleflight_hits");
  singleflight_bytes_saved_ = stats_.GetCounter("singleflight_bytes_saved");
  flushes_ = stats_.GetCounter("flushes");
  flush_deadline_ = stats_.GetCounter("flush_deadline");
  flush_size_ = stats_.GetCounter("flush_size");
  flush_prefetch_ = stats_.GetCounter("flush_prefetch");
  prefetch_enqueued_ = stats_.GetCounter("prefetch_enqueued");
  prefetch_reads_ = stats_.GetCounter("prefetch_reads");
  prefetch_dropped_ = stats_.GetCounter("prefetch_dropped");
  prefetch_promoted_ = stats_.GetCounter("prefetch_promoted");
  prefetch_singleflight_ = stats_.GetCounter("prefetch_singleflight");
}

CrossRequestIoStats BatchScheduler::Snapshot() const {
  CrossRequestIoStats s;
  s.device_reads = device_reads_->value();
  s.cross_request_merges = cross_request_merges_->value();
  s.singleflight_hits = singleflight_hits_->value();
  s.singleflight_bytes_saved = singleflight_bytes_saved_->value();
  s.flushes = flushes_->value();
  s.prefetch_reads = prefetch_reads_->value();
  s.prefetch_dropped = prefetch_dropped_->value();
  s.prefetch_promoted = prefetch_promoted_->value();
  return s;
}

Bytes BatchScheduler::BusOf(const PendingRead& p) const {
  return NvmeDevice::BusBytes(p.span_begin, p.span_end - p.span_begin, p.sub_block);
}

bool BatchScheduler::WouldShare(Bytes span_begin, Bytes span_end, uint64_t first_block,
                                uint64_t last_block, bool sub_block) const {
  if (!config_.cross_request) return false;
  for (const auto& read : in_flight_) {
    if (read->sub_block != sub_block) continue;
    if (span_begin >= read->base && span_end <= read->base + read->buf->size()) {
      return true;
    }
  }
  // Only full coverage counts as sharing here. A span-GROWING merge still
  // adds media occupancy (service time scales with bus bytes), so it must
  // queue for an outstanding-IO slot like any other device work — letting
  // growth skip the throttle snowballs pending SQEs into cap-sized reads
  // that serialize one device channel.
  bool covered = false;
  for (const PendingRead& p : pending_) {
    if (Compatible(p, span_begin, span_end, first_block, last_block, sub_block,
                   &covered) &&
        covered) {
      return true;
    }
  }
  for (const PendingRead& p : prefetch_pending_) {
    if (Compatible(p, span_begin, span_end, first_block, last_block, sub_block,
                   &covered) &&
        covered) {
      return true;  // demand would promote (and fully ride) this speculative SQE
    }
  }
  return false;
}

BatchScheduler::Admission BatchScheduler::Enqueue(ReadRequest req) {
  if (req.kind == ReadRequest::Kind::kPrefetch) return EnqueuePrefetch(req);
  return EnqueueDemand(req);
}

BatchScheduler::Admission BatchScheduler::EnqueueDemand(ReadRequest& req) {
  enqueued_->Add(1);
  if (config_.cross_request) {
    if (TryJoinInFlight(req)) return Admission::kJoinedInFlight;
    Admission admission{};
    if (TryAbsorbIntoPending(req, &admission)) return admission;
    if (TryPromotePrefetch(req, &admission)) return admission;
  }

  PendingRead p;
  p.span_begin = req.span_begin;
  p.span_end = req.span_end;
  p.first_block = req.first_block;
  p.last_block = req.last_block;
  p.sub_block = req.sub_block;
  p.rows = req.rows;
  p.per_row_bus = req.per_row_bus;
  p.subscribers.push_back(std::move(req.cb));
  pending_.push_back(std::move(p));

  MaybeFlushOrArm();
  return Admission::kNewRead;
}

BatchScheduler::Admission BatchScheduler::EnqueuePrefetch(ReadRequest& req) {
  // Bypass-mode parity: the PR 1 ablation baseline must stay byte-identical,
  // so the prefetch lane is inert without cross-request batching (the
  // Prefetcher is not even constructed then; this is the backstop).
  assert(config_.cross_request && "prefetch lane requires cross_request batching");
  if (!config_.cross_request) {
    prefetch_dropped_->Add(1);
    return Admission::kDropped;
  }
  prefetch_enqueued_->Add(1);

  // Free rides first: an in-flight or pending read that already covers the
  // span serves the prefetch for nothing (and keeps demand counters clean —
  // prefetch sharing is tracked separately).
  for (const auto& read : in_flight_) {
    if (read->sub_block != req.sub_block) continue;
    if (req.span_begin < read->base || req.span_end > read->base + read->buf->size()) {
      continue;
    }
    prefetch_singleflight_->Add(1);
    read->subscribers.push_back(std::move(req.cb));
    return Admission::kJoinedInFlight;
  }
  for (PendingRead& p : pending_) {
    bool covered = false;
    if (Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                   req.sub_block, &covered) &&
        covered) {
      // Pure subscription: a prefetch may ride a demand SQE but never grow
      // one (that would inflate a demand read for speculative bytes).
      prefetch_singleflight_->Add(1);
      p.subscribers.push_back(std::move(req.cb));
      return Admission::kJoinedPending;
    }
  }
  // Merge within the lane (same cap/gap rules as demand merging). Growth
  // is charged to the byte budget up front — an over-budget merge drops
  // like an over-budget new SQE would.
  for (size_t i = 0; i < prefetch_pending_.size(); ++i) {
    PendingRead& p = prefetch_pending_[i];
    bool covered = false;
    if (!Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    if (covered) {
      prefetch_singleflight_->Add(1);
      p.subscribers.push_back(std::move(req.cb));
      return Admission::kJoinedPending;
    }
    PendingRead grown = p;
    grown.span_begin = std::min(p.span_begin, req.span_begin);
    grown.span_end = std::max(p.span_end, req.span_end);
    const Bytes delta = BusOf(grown) - BusOf(p);
    if (prefetch_pending_bytes_ + prefetch_inflight_bytes_ + delta >
        config_.prefetch_max_inflight_bytes) {
      prefetch_dropped_->Add(1);
      return Admission::kDropped;
    }
    p.span_begin = grown.span_begin;
    p.span_end = grown.span_end;
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    p.subscribers.push_back(std::move(req.cb));
    p.prefetch_budget_bytes += delta;
    prefetch_pending_bytes_ += delta;
    return Admission::kMergedPending;
  }

  // Admission against the lane's byte budget — speculation is dropped, not
  // queued, under pressure, so it can never starve demand.
  const Bytes bus =
      NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin, req.sub_block);
  if (prefetch_pending_bytes_ + prefetch_inflight_bytes_ + bus >
          config_.prefetch_max_inflight_bytes ||
      prefetch_pending_.size() >= kMaxLaneSqes) {
    prefetch_dropped_->Add(1);
    return Admission::kDropped;
  }

  PendingRead p;
  p.span_begin = req.span_begin;
  p.span_end = req.span_end;
  p.first_block = req.first_block;
  p.last_block = req.last_block;
  p.sub_block = req.sub_block;
  p.prefetch = true;
  p.prefetch_budget_bytes = bus;
  p.rows = req.rows;
  p.per_row_bus = req.per_row_bus;
  p.subscribers.push_back(std::move(req.cb));
  prefetch_pending_bytes_ += bus;
  prefetch_pending_.push_back(std::move(p));

  // No flush rights: ride the next demand doorbell, or the lane's own
  // unhurried drain timer when nothing demand-side is coming.
  ArmPrefetchFlush();
  return Admission::kNewRead;
}

bool BatchScheduler::TryJoinInFlight(ReadRequest& req) {
  for (const auto& read : in_flight_) {
    // The buffer covers [base, base + size): whole blocks in block mode,
    // the DWORD-rounded span in sub-block mode. Any run inside that window
    // can be served by this read's completion.
    if (read->sub_block != req.sub_block) continue;
    if (req.span_begin < read->base ||
        req.span_end > read->base + read->buf->size()) {
      continue;
    }
    singleflight_hits_->Add(1);
    singleflight_bytes_saved_->Add(
        NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin, req.sub_block));
    // Demand catching up with speculation: the prefetch read proved useful
    // before it even completed.
    if (read->prefetch) prefetch_promoted_->Add(1);
    read->subscribers.push_back(std::move(req.cb));
    return true;
  }
  return false;
}

bool BatchScheduler::Compatible(const PendingRead& p, Bytes begin, Bytes end,
                                uint64_t first_block, uint64_t last_block,
                                bool sub_block, bool* covered) const {
  if (p.sub_block != sub_block) return false;

  // Coverage bounds of the eventual read: whole blocks cross the bus in
  // block mode, so any row inside the block range rides along for free.
  const Bytes cover_begin = p.sub_block ? p.span_begin : p.first_block * kBlockSize;
  const Bytes cover_end = p.sub_block ? p.span_end : (p.last_block + 1) * kBlockSize;
  if (begin >= cover_begin && end <= cover_end) {
    *covered = true;
    return true;
  }
  *covered = false;

  const uint64_t merged_first = std::min(p.first_block, first_block);
  const uint64_t merged_last = std::max(p.last_block, last_block);
  if ((merged_last - merged_first + 1) * kBlockSize > config_.max_coalesce_bytes) {
    return false;
  }
  if (p.sub_block) {
    // Gap-bounded span merging, like the planner's sub-block rule.
    const Bytes gap = begin > p.span_end      ? begin - p.span_end
                      : p.span_begin > end    ? p.span_begin - end
                                              : 0;
    return gap <= config_.coalesce_gap_bytes;
  }
  // Overlapping or adjacent block ranges fuse into one read.
  return first_block <= p.last_block + 1 && p.first_block <= last_block + 1;
}

bool BatchScheduler::TryAbsorbIntoPending(ReadRequest& req, Admission* admission) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingRead& p = pending_[i];
    bool covered = false;
    if (!Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    p.span_begin = std::min(p.span_begin, req.span_begin);
    p.span_end = std::max(p.span_end, req.span_end);
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    p.subscribers.push_back(std::move(req.cb));
    if (covered) {
      singleflight_hits_->Add(1);
      singleflight_bytes_saved_->Add(NvmeDevice::BusBytes(
          req.span_begin, req.span_end - req.span_begin, req.sub_block));
      *admission = Admission::kJoinedPending;
    } else {
      cross_request_merges_->Add(1);
      *admission = Admission::kMergedPending;
      FuseOverlappingPending(i);
    }
    return true;
  }
  return false;
}

bool BatchScheduler::TryPromotePrefetch(ReadRequest& req, Admission* admission) {
  for (size_t i = 0; i < prefetch_pending_.size(); ++i) {
    PendingRead& q = prefetch_pending_[i];
    bool covered = false;
    if (!Compatible(q, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    // Merged-read admission: the speculative SQE moves to the demand batch
    // (demand priority, demand flush triggers) instead of the demand run
    // issuing a second read for overlapping bytes. Admission-domain
    // handoff: a covered promotion stays charged to the prefetch byte
    // budget (the demand run arrived slot-free via WouldShare and there is
    // no other holder); a span-growing promotion is re-admitted under the
    // demand run's throttle slot — it returns kNewRead so the caller keeps
    // that slot — and its budget bytes are released.
    PendingRead p = std::move(q);
    prefetch_pending_.erase(prefetch_pending_.begin() + static_cast<std::ptrdiff_t>(i));
    p.prefetch = false;
    p.span_begin = std::min(p.span_begin, req.span_begin);
    p.span_end = std::max(p.span_end, req.span_end);
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    p.subscribers.push_back(std::move(req.cb));
    prefetch_promoted_->Add(1);
    if (covered) {
      singleflight_hits_->Add(1);
      singleflight_bytes_saved_->Add(NvmeDevice::BusBytes(
          req.span_begin, req.span_end - req.span_begin, req.sub_block));
      *admission = Admission::kJoinedPending;
    } else {
      prefetch_pending_bytes_ -= p.prefetch_budget_bytes;
      p.prefetch_budget_bytes = 0;
      cross_request_merges_->Add(1);
      *admission = Admission::kNewRead;
    }
    pending_.push_back(std::move(p));
    FuseOverlappingPending(pending_.size() - 1);
    MaybeFlushOrArm();
    return true;
  }
  return false;
}

void BatchScheduler::FuseOverlappingPending(size_t i) {
  // A merge can bridge two previously-independent pending reads (e.g. a
  // run landing between blocks [0] and [2] grows the first SQE to [0,1]
  // while [2,2] still sits in the batch). Fuse everything the grown read
  // now covers or abuts; each fusion can grow it further, so rescan until
  // a pass makes no change.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t j = 0; j < pending_.size(); ++j) {
      if (j == i) continue;
      PendingRead& p = pending_[i];
      PendingRead& q = pending_[j];
      bool covered = false;
      if (!Compatible(p, q.span_begin, q.span_end, q.first_block, q.last_block,
                      q.sub_block, &covered)) {
        continue;
      }
      p.span_begin = std::min(p.span_begin, q.span_begin);
      p.span_end = std::max(p.span_end, q.span_end);
      p.first_block = std::min(p.first_block, q.first_block);
      p.last_block = std::max(p.last_block, q.last_block);
      p.rows += q.rows;
      p.per_row_bus += q.per_row_bus;
      p.prefetch_budget_bytes += q.prefetch_budget_bytes;  // budget carries over
      for (Completion& cb : q.subscribers) p.subscribers.push_back(std::move(cb));
      cross_request_merges_->Add(1);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(j));
      if (j < i) --i;
      changed = true;
      break;  // indices shifted; rescan
    }
  }
}

void BatchScheduler::MaybeFlushOrArm() {
  if (static_cast<int>(pending_.size()) >= config_.max_batch_sqes) {
    flush_size_->Add(1);
    Flush();
  } else {
    ArmFlush();
  }
}

void BatchScheduler::ArmFlush() {
  if (flush_armed_) return;
  flush_armed_ = true;
  // Bypass mode: the caller flushes at request boundaries; the delay-0
  // timer only backstops runs enqueued outside one (throttle stragglers).
  // Cross-request mode waits out the batching window so runs from other
  // lookups can pile in.
  const SimDuration delay =
      config_.cross_request ? config_.max_batch_delay : SimDuration(0);
  const uint64_t generation = flush_generation_;
  loop_->ScheduleAfter(delay, [this, generation] {
    if (generation != flush_generation_) return;  // batch already flushed
    if (config_.cross_request) flush_deadline_->Add(1);
    Flush();
  });
}

void BatchScheduler::ArmPrefetchFlush() {
  // A demand flush is already due and will carry the lane; and in bypass
  // mode the lane is never populated.
  if (flush_armed_ || prefetch_flush_armed_) return;
  prefetch_flush_armed_ = true;
  const uint64_t generation = flush_generation_;
  loop_->ScheduleAfter(config_.prefetch_flush_delay, [this, generation] {
    prefetch_flush_armed_ = false;
    if (prefetch_pending_.empty()) return;
    // Demand arrived meanwhile: its own flush (armed or size-triggered)
    // drains the lane; a prefetch timer must never ring the doorbell early
    // for demand SQEs.
    if (!pending_.empty()) return;
    if (generation != flush_generation_) {
      // A flush rang since arming and still left lane entries (doorbell was
      // full); wait out another window.
      ArmPrefetchFlush();
      return;
    }
    flush_prefetch_->Add(1);
    Flush();
  });
}

void BatchScheduler::Flush() {
  ++flush_generation_;
  flush_armed_ = false;

  // Swap the batch out first: completion callbacks scheduled below may
  // re-enter Enqueue (retries) and must see a clean pending list. The
  // low-priority lane fills whatever doorbell room demand left.
  std::vector<PendingRead> batch;
  batch.swap(pending_);
  while (!prefetch_pending_.empty() &&
         static_cast<int>(batch.size()) < config_.max_batch_sqes) {
    batch.push_back(std::move(prefetch_pending_.front()));
    prefetch_pending_.pop_front();
  }
  if (batch.empty()) return;
  flushes_->Add(1);

  std::vector<IoEngine::ReadOp> ops;
  ops.reserve(batch.size());
  for (PendingRead& p : batch) {
    auto read = std::make_shared<InFlightRead>();
    read->span_begin = p.span_begin;
    read->span_end = p.span_end;
    read->sub_block = p.sub_block;
    read->prefetch = p.prefetch;
    // The device lands data at its alignment base: the first byte of the
    // first block (block mode) or the DWORD floor of the span (sub-block).
    read->base = p.sub_block ? (p.span_begin & ~(kDwordBytes - 1))
                             : p.first_block * kBlockSize;
    const Bytes length = p.span_end - p.span_begin;
    const Bytes bus = NvmeDevice::BusBytes(p.span_begin, length, p.sub_block);
    // Budget bytes (possibly carried by a promoted/fused SQE) move from
    // pending to in-flight and are released at completion.
    read->prefetch_budget_bytes = p.prefetch_budget_bytes;
    prefetch_pending_bytes_ -= p.prefetch_budget_bytes;
    prefetch_inflight_bytes_ += p.prefetch_budget_bytes;
    read->buf = arena_->Acquire(bus);
    read->subscribers = std::move(p.subscribers);
    in_flight_.push_back(read);
    if (p.prefetch) {
      prefetch_reads_->Add(1);
    } else {
      device_reads_->Add(1);
    }

    IoEngine::ReadOp op;
    op.offset = p.span_begin;
    op.length = length;
    op.sub_block = p.sub_block;
    op.dest = std::span<uint8_t>(read->buf->data(), read->buf->size());
    op.merged_reads = std::max<uint32_t>(1, p.rows);
    op.bytes_saved = p.per_row_bus > bus ? p.per_row_bus - bus : 0;
    op.cb = [this, read](Status status, SimDuration /*lat*/) {
      CompleteRead(read, std::move(status));
    };
    ops.push_back(std::move(op));
  }
  engine_->SubmitBatch(ops);

  // Lane overflow (doorbell was full): drain on the background timer.
  if (!prefetch_pending_.empty()) ArmPrefetchFlush();
}

void BatchScheduler::CompleteRead(const std::shared_ptr<InFlightRead>& read,
                                  Status status) {
  // Unregister before delivering: a subscriber may re-enqueue (retry) and
  // must not join a read that has already completed.
  in_flight_.erase(std::find(in_flight_.begin(), in_flight_.end(), read));
  prefetch_inflight_bytes_ -= read->prefetch_budget_bytes;
  const uint8_t* data = status.ok() ? read->buf->data() : nullptr;
  for (Completion& cb : read->subscribers) {
    cb(status, data, read->base);
  }
  read->subscribers.clear();
  read->buf.reset();  // return the bounce buffer to the arena promptly
}

}  // namespace sdm
