#include "sched/batch_scheduler.h"

#include <algorithm>
#include <cassert>

#include "device/nvme_device.h"

namespace sdm {

BatchScheduler::BatchScheduler(IoEngine* engine, BufferArena* arena, EventLoop* loop,
                               BatchSchedulerConfig config)
    : engine_(engine), arena_(arena), loop_(loop), config_(config) {
  assert(engine != nullptr);
  assert(arena != nullptr);
  assert(loop != nullptr);
  assert(config.max_batch_sqes >= 1);
  // The background lane's drain timer is a STARVATION bound, not a latency
  // privilege: it must never give background demand a faster doorbell than
  // the foreground batching window itself.
  config_.background_flush_delay =
      std::max(config_.background_flush_delay, config_.max_batch_delay);
  enqueued_ = stats_.GetCounter("enqueued");
  device_reads_ = stats_.GetCounter("device_reads");
  cross_request_merges_ = stats_.GetCounter("cross_request_merges");
  singleflight_hits_ = stats_.GetCounter("singleflight_hits");
  singleflight_bytes_saved_ = stats_.GetCounter("singleflight_bytes_saved");
  flushes_ = stats_.GetCounter("flushes");
  flush_deadline_ = stats_.GetCounter("flush_deadline");
  flush_size_ = stats_.GetCounter("flush_size");
  flush_prefetch_ = stats_.GetCounter("flush_prefetch");
  flush_background_ = stats_.GetCounter("flush_background");
  prefetch_enqueued_ = stats_.GetCounter("prefetch_enqueued");
  prefetch_reads_ = stats_.GetCounter("prefetch_reads");
  prefetch_dropped_ = stats_.GetCounter("prefetch_dropped");
  prefetch_promoted_ = stats_.GetCounter("prefetch_promoted");
  prefetch_singleflight_ = stats_.GetCounter("prefetch_singleflight");
  background_enqueued_ = stats_.GetCounter("background_enqueued");
  background_reads_ = stats_.GetCounter("background_reads");
  background_parked_ = stats_.GetCounter("background_parked");
  background_promoted_ = stats_.GetCounter("background_promoted");
  background_singleflight_ = stats_.GetCounter("background_singleflight");
  cross_tenant_hits_ = stats_.GetCounter("cross_tenant_hits");
  deadline_expired_ = stats_.GetCounter("deadline_expired");
  hedges_issued_ = stats_.GetCounter("hedges_issued");
  hedges_won_ = stats_.GetCounter("hedges_won");
  replica_hedges_ = stats_.GetCounter("replica_hedges");
  replica_hedge_wins_ = stats_.GetCounter("replica_hedge_wins");
}

void BatchScheduler::set_obs(Observability* obs, const std::string& name) {
  obs_sqes_ = ObsCounter(obs, name + "sched/sqes");
  obs_singleflight_ = ObsCounter(obs, name + "sched/singleflight");
  obs_merges_ = ObsCounter(obs, name + "sched/merges");
  obs_hedges_ = ObsCounter(obs, name + "sched/hedges");
  obs_expired_ = ObsCounter(obs, name + "sched/expired");
  obs_pf_dropped_ = ObsCounter(obs, name + "sched/prefetch_dropped");
  obs_bg_parked_ = ObsCounter(obs, name + "sched/background_parked");
  obs_inflight_ = ObsGauge(obs, name + "sched/inflight");
  obs_read_lat_ = ObsHist(obs, name + "sched/read_latency_ns");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = name;
    if (!process.empty() && process.back() == '/') process.pop_back();
    obs_track_ = obs_spans_->Track(process, "sched");
  }
}

CrossRequestIoStats CrossRequestIoStats::Since(const CrossRequestIoStats& base) const {
  CrossRequestIoStats d;
  d.device_reads = device_reads - base.device_reads;
  d.cross_request_merges = cross_request_merges - base.cross_request_merges;
  d.singleflight_hits = singleflight_hits - base.singleflight_hits;
  d.singleflight_bytes_saved = singleflight_bytes_saved - base.singleflight_bytes_saved;
  d.flushes = flushes - base.flushes;
  d.prefetch_reads = prefetch_reads - base.prefetch_reads;
  d.prefetch_dropped = prefetch_dropped - base.prefetch_dropped;
  d.prefetch_promoted = prefetch_promoted - base.prefetch_promoted;
  d.background_reads = background_reads - base.background_reads;
  d.background_parked = background_parked - base.background_parked;
  d.background_promoted = background_promoted - base.background_promoted;
  d.deadline_expired = deadline_expired - base.deadline_expired;
  d.hedges_issued = hedges_issued - base.hedges_issued;
  d.hedges_won = hedges_won - base.hedges_won;
  d.replica_hedges = replica_hedges - base.replica_hedges;
  return d;
}

TenantIoShare TenantIoShare::Since(const TenantIoShare& base) const {
  TenantIoShare d;
  d.demand_reads = demand_reads - base.demand_reads;
  d.demand_bytes = demand_bytes - base.demand_bytes;
  d.background_reads = background_reads - base.background_reads;
  d.background_bytes = background_bytes - base.background_bytes;
  d.prefetch_bytes = prefetch_bytes - base.prefetch_bytes;
  d.singleflight_hits = singleflight_hits - base.singleflight_hits;
  d.cross_tenant_hits = cross_tenant_hits - base.cross_tenant_hits;
  d.cross_tenant_bytes_saved = cross_tenant_bytes_saved - base.cross_tenant_bytes_saved;
  return d;
}

CrossRequestIoStats BatchScheduler::Snapshot() const {
  CrossRequestIoStats s;
  s.device_reads = device_reads_->value();
  s.cross_request_merges = cross_request_merges_->value();
  s.singleflight_hits = singleflight_hits_->value();
  s.singleflight_bytes_saved = singleflight_bytes_saved_->value();
  s.flushes = flushes_->value();
  s.prefetch_reads = prefetch_reads_->value();
  s.prefetch_dropped = prefetch_dropped_->value();
  s.prefetch_promoted = prefetch_promoted_->value();
  s.background_reads = background_reads_->value();
  s.background_parked = background_parked_->value();
  s.background_promoted = background_promoted_->value();
  s.deadline_expired = deadline_expired_->value();
  s.hedges_issued = hedges_issued_->value();
  s.hedges_won = hedges_won_->value();
  s.replica_hedges = replica_hedges_->value();
  return s;
}

BatchScheduler::LanePolicy BatchScheduler::Policy(size_t lane) const {
  LanePolicy p;
  if (lane == kBackgroundLane) {
    p.max_inflight_bytes = config_.background_max_inflight_bytes;
    p.drain_delay = config_.background_flush_delay;
    p.droppable = false;
    p.drains_despite_demand = true;
  } else {
    p.max_inflight_bytes = config_.prefetch_max_inflight_bytes;
    p.drain_delay = config_.prefetch_flush_delay;
    p.droppable = true;
    p.drains_despite_demand = false;
  }
  return p;
}

TenantIoShare& BatchScheduler::Share(uint32_t tenant) {
  if (tenant >= tenant_shares_.size()) tenant_shares_.resize(tenant + 1);
  return tenant_shares_[tenant];
}

TenantIoShare BatchScheduler::tenant_share(uint32_t tenant) const {
  return tenant < tenant_shares_.size() ? tenant_shares_[tenant] : TenantIoShare{};
}

void BatchScheduler::RecordJoin(const ReadRequest& req, Kind owner_kind,
                                uint32_t owner_tenant) {
  (void)owner_kind;
  // Speculation riding an existing read saves no tenant any demand bytes;
  // the ledger tracks demand-side sharing only.
  if (req.kind == Kind::kPrefetch) return;
  TenantIoShare& share = Share(req.tenant);
  share.singleflight_hits += 1;
  if (owner_tenant != req.tenant) {
    const Bytes bus =
        NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin, req.sub_block);
    share.cross_tenant_hits += 1;
    share.cross_tenant_bytes_saved += bus;
    cross_tenant_hits_->Add(1);
  }
}

Bytes BatchScheduler::BusOf(const PendingRead& p) const {
  return NvmeDevice::BusBytes(p.span_begin, p.span_end - p.span_begin, p.sub_block);
}

bool BatchScheduler::WouldShare(Bytes span_begin, Bytes span_end, uint64_t first_block,
                                uint64_t last_block, bool sub_block) const {
  if (!config_.cross_request) return false;
  for (const auto& read : in_flight_) {
    if (read->sub_block != sub_block) continue;
    if (span_begin >= read->base && span_end <= read->base + read->buf->size()) {
      return true;
    }
  }
  // Only full coverage counts as sharing here. A span-GROWING merge still
  // adds media occupancy (service time scales with bus bytes), so it must
  // queue for an outstanding-IO slot like any other device work — letting
  // growth skip the throttle snowballs pending SQEs into cap-sized reads
  // that serialize one device channel.
  bool covered = false;
  for (const PendingRead& p : pending_) {
    if (Compatible(p, span_begin, span_end, first_block, last_block, sub_block,
                   &covered) &&
        covered) {
      return true;
    }
  }
  for (const Lane& lane : lanes_) {
    for (const PendingRead& p : lane.pending) {
      if (Compatible(p, span_begin, span_end, first_block, last_block, sub_block,
                     &covered) &&
          covered) {
        return true;  // demand would promote (and fully ride) this lane SQE
      }
    }
  }
  return false;
}

BatchScheduler::Admission BatchScheduler::Enqueue(ReadRequest req) {
  if (req.kind == Kind::kDemand) return EnqueueDemand(req);
  return EnqueueLane(req, LaneIndex(req.kind));
}

BatchScheduler::Admission BatchScheduler::EnqueueDemand(ReadRequest& req) {
  enqueued_->Add(1);
  if (config_.cross_request) {
    if (TryJoinInFlight(req)) return Admission::kJoinedInFlight;
    Admission admission{};
    if (TryAbsorbIntoPending(req, &admission)) return admission;
    // Foreground overlap upgrades low-priority work (merged-read admission):
    // background-tenant SQEs first (real demand), then speculation.
    if (TryPromoteLane(req, kBackgroundLane, &admission)) return admission;
    if (TryPromoteLane(req, kPrefetchLane, &admission)) return admission;
  }

  PendingRead p;
  p.span_begin = req.span_begin;
  p.span_end = req.span_end;
  p.first_block = req.first_block;
  p.last_block = req.last_block;
  p.sub_block = req.sub_block;
  p.tenant = req.tenant;
  p.rows = req.rows;
  p.per_row_bus = req.per_row_bus;
  p.service_local = req.service_local;
  p.subscribers.push_back(std::move(req.cb));
  pending_.push_back(std::move(p));

  MaybeFlushOrArm();
  return Admission::kNewRead;
}

BatchScheduler::Admission BatchScheduler::EnqueueLane(ReadRequest& req, size_t lane_idx) {
  if (!config_.cross_request) {
    // Background runs are demand: without cross-request batching (a valid
    // owned-store ablation config) they degrade to the demand lane rather
    // than losing the read.
    if (req.kind == Kind::kBackground) return EnqueueDemand(req);
    // Bypass-mode parity: the PR 1 ablation baseline must stay
    // byte-identical, so the prefetch lane is inert without cross-request
    // batching (the Prefetcher is not even constructed then; a prefetch
    // enqueue here is a wiring bug, hence the debug assert).
    assert(false && "prefetch lanes require cross_request batching");
    prefetch_dropped_->Add(1);
    return Admission::kDropped;
  }
  Lane& lane = lanes_[lane_idx];
  const LanePolicy policy = Policy(lane_idx);
  Counter* lane_singleflight =
      lane_idx == kPrefetchLane ? prefetch_singleflight_ : background_singleflight_;
  (lane_idx == kPrefetchLane ? prefetch_enqueued_ : background_enqueued_)->Add(1);

  // Free rides first: an in-flight or pending read that already covers the
  // span serves the run for nothing (and keeps demand counters clean —
  // lane sharing is tracked separately).
  for (const auto& read : in_flight_) {
    if (read->sub_block != req.sub_block) continue;
    if (req.span_begin < read->base || req.span_end > read->base + read->buf->size()) {
      continue;
    }
    lane_singleflight->Add(1);
    // Background demand catching up with speculation: the prefetch read
    // proved useful before it even completed.
    if (read->kind == Kind::kPrefetch && req.kind != Kind::kPrefetch) {
      prefetch_promoted_->Add(1);
    }
    RecordJoin(req, read->kind, read->tenant);
    read->subscribers.push_back(std::move(req.cb));
    return Admission::kJoinedInFlight;
  }
  for (PendingRead& p : pending_) {
    bool covered = false;
    if (Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                   req.sub_block, &covered) &&
        covered) {
      // Pure subscription: a lane run may ride a demand SQE but never grow
      // one (that would inflate a foreground read for low-priority bytes).
      lane_singleflight->Add(1);
      RecordJoin(req, p.kind, p.tenant);
      p.service_local = p.service_local && req.service_local;
      p.subscribers.push_back(std::move(req.cb));
      return Admission::kJoinedPending;
    }
  }
  // Cross-lane coverage (keeps WouldShare exact for slot-free callers):
  //  - background demand covered by a pending PREFETCH SQE promotes it into
  //    the background lane — demand must not wait out the unhurried
  //    prefetch drain timer, and the lane's own timer now bounds it. The
  //    budget charge moves with it (demand is never dropped, so the
  //    transfer may transiently exceed the background budget).
  //  - a prefetch run covered by a pending BACKGROUND SQE just subscribes:
  //    that read flushes no later than the speculation would have.
  {
    Lane& other = lanes_[lane_idx == kPrefetchLane ? kBackgroundLane : kPrefetchLane];
    for (size_t i = 0; i < other.pending.size(); ++i) {
      PendingRead& q = other.pending[i];
      bool covered = false;
      if (!Compatible(q, req.span_begin, req.span_end, req.first_block, req.last_block,
                      req.sub_block, &covered) ||
          !covered) {
        continue;
      }
      lane_singleflight->Add(1);
      RecordJoin(req, q.kind, q.tenant);
      if (req.kind == Kind::kBackground) {
        PendingRead promoted = std::move(q);
        other.pending.erase(other.pending.begin() + static_cast<std::ptrdiff_t>(i));
        other.pending_bytes -= promoted.budget_bytes;
        prefetch_promoted_->Add(1);
        promoted.kind = Kind::kBackground;
        promoted.budget_kind = Kind::kBackground;
        lane.pending_bytes += promoted.budget_bytes;
        promoted.service_local = promoted.service_local && req.service_local;
        promoted.subscribers.push_back(std::move(req.cb));
        lane.pending.push_back(std::move(promoted));
        ArmLaneDrain(lane_idx);
      } else {
        q.service_local = q.service_local && req.service_local;
        q.subscribers.push_back(std::move(req.cb));
      }
      return Admission::kJoinedPending;
    }
  }
  // Merge within the lane (same cap/gap rules as demand merging). Growth
  // is charged to the byte budget up front — an over-budget merge drops
  // (prefetch) or parks (background) like an over-budget new SQE would.
  for (size_t i = 0; i < lane.pending.size(); ++i) {
    PendingRead& p = lane.pending[i];
    bool covered = false;
    if (!Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    if (covered) {
      lane_singleflight->Add(1);
      RecordJoin(req, p.kind, p.tenant);
      p.service_local = p.service_local && req.service_local;
      p.subscribers.push_back(std::move(req.cb));
      return Admission::kJoinedPending;
    }
    PendingRead grown = p;
    grown.span_begin = std::min(p.span_begin, req.span_begin);
    grown.span_end = std::max(p.span_end, req.span_end);
    const Bytes delta = BusOf(grown) - BusOf(p);
    if (lane.pending_bytes + lane.inflight_bytes + delta > policy.max_inflight_bytes) {
      if (policy.droppable) {
        prefetch_dropped_->Add(1);
        if (obs_pf_dropped_ != nullptr) obs_pf_dropped_->Add(loop_->Now());
        return Admission::kDropped;
      }
      background_parked_->Add(1);
      if (obs_bg_parked_ != nullptr) obs_bg_parked_->Add(loop_->Now());
      lane.parked.push_back(std::move(req));
      return Admission::kNewRead;
    }
    p.span_begin = grown.span_begin;
    p.span_end = grown.span_end;
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    p.service_local = p.service_local && req.service_local;
    p.subscribers.push_back(std::move(req.cb));
    p.budget_bytes += delta;
    lane.pending_bytes += delta;
    return Admission::kMergedPending;
  }

  // Admission against the lane's byte budget — under pressure speculation
  // is dropped and background demand parks (FIFO), so neither can starve
  // foreground demand of ring slots or arena buffers.
  const Bytes bus =
      NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin, req.sub_block);
  if (lane.pending_bytes + lane.inflight_bytes + bus > policy.max_inflight_bytes ||
      lane.pending.size() >= kMaxLaneSqes) {
    if (policy.droppable) {
      prefetch_dropped_->Add(1);
      if (obs_pf_dropped_ != nullptr) obs_pf_dropped_->Add(loop_->Now());
      return Admission::kDropped;
    }
    // Same escape hatch as DrainParked: a run larger than the whole budget
    // must still make progress when the lane is otherwise idle — parking it
    // would strand it forever (no completion ever calls DrainParked).
    const bool lane_idle =
        lane.pending.empty() && lane.inflight_bytes == 0 && lane.parked.empty();
    if (!lane_idle) {
      background_parked_->Add(1);
      if (obs_bg_parked_ != nullptr) obs_bg_parked_->Add(loop_->Now());
      lane.parked.push_back(std::move(req));
      return Admission::kNewRead;
    }
  }
  return AdmitToLane(req, lane_idx, bus);
}

BatchScheduler::Admission BatchScheduler::AdmitToLane(ReadRequest& req, size_t lane_idx,
                                                      Bytes bus) {
  Lane& lane = lanes_[lane_idx];
  PendingRead p;
  p.span_begin = req.span_begin;
  p.span_end = req.span_end;
  p.first_block = req.first_block;
  p.last_block = req.last_block;
  p.sub_block = req.sub_block;
  p.kind = req.kind;
  p.tenant = req.tenant;
  p.budget_bytes = bus;
  p.budget_kind = req.kind;
  p.rows = req.rows;
  p.per_row_bus = req.per_row_bus;
  p.service_local = req.service_local;
  p.subscribers.push_back(std::move(req.cb));
  lane.pending_bytes += bus;
  lane.pending.push_back(std::move(p));

  // No flush rights: ride the next demand doorbell, or the lane's own
  // drain timer when no doorbell comes.
  ArmLaneDrain(lane_idx);
  return Admission::kNewRead;
}

bool BatchScheduler::TryJoinInFlight(ReadRequest& req) {
  for (const auto& read : in_flight_) {
    // The buffer covers [base, base + size): whole blocks in block mode,
    // the DWORD-rounded span in sub-block mode. Any run inside that window
    // can be served by this read's completion.
    if (read->sub_block != req.sub_block) continue;
    if (req.span_begin < read->base ||
        req.span_end > read->base + read->buf->size()) {
      continue;
    }
    singleflight_hits_->Add(1);
    if (obs_singleflight_ != nullptr) obs_singleflight_->Add(loop_->Now());
    singleflight_bytes_saved_->Add(
        NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin, req.sub_block));
    // Demand catching up with speculation: the prefetch read proved useful
    // before it even completed.
    if (read->kind == Kind::kPrefetch) prefetch_promoted_->Add(1);
    RecordJoin(req, read->kind, read->tenant);
    read->subscribers.push_back(std::move(req.cb));
    return true;
  }
  return false;
}

bool BatchScheduler::Compatible(const PendingRead& p, Bytes begin, Bytes end,
                                uint64_t first_block, uint64_t last_block,
                                bool sub_block, bool* covered) const {
  if (p.sub_block != sub_block) return false;

  // Coverage bounds of the eventual read: whole blocks cross the bus in
  // block mode, so any row inside the block range rides along for free.
  const Bytes cover_begin = p.sub_block ? p.span_begin : p.first_block * kBlockSize;
  const Bytes cover_end = p.sub_block ? p.span_end : (p.last_block + 1) * kBlockSize;
  if (begin >= cover_begin && end <= cover_end) {
    *covered = true;
    return true;
  }
  *covered = false;

  const uint64_t merged_first = std::min(p.first_block, first_block);
  const uint64_t merged_last = std::max(p.last_block, last_block);
  if ((merged_last - merged_first + 1) * kBlockSize > config_.max_coalesce_bytes) {
    return false;
  }
  if (p.sub_block) {
    // Gap-bounded span merging, like the planner's sub-block rule.
    const Bytes gap = begin > p.span_end      ? begin - p.span_end
                      : p.span_begin > end    ? p.span_begin - end
                                              : 0;
    return gap <= config_.coalesce_gap_bytes;
  }
  // Overlapping or adjacent block ranges fuse into one read.
  return first_block <= p.last_block + 1 && p.first_block <= last_block + 1;
}

bool BatchScheduler::TryAbsorbIntoPending(ReadRequest& req, Admission* admission) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingRead& p = pending_[i];
    bool covered = false;
    if (!Compatible(p, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    p.span_begin = std::min(p.span_begin, req.span_begin);
    p.span_end = std::max(p.span_end, req.span_end);
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    if (covered) {
      singleflight_hits_->Add(1);
      if (obs_singleflight_ != nullptr) obs_singleflight_->Add(loop_->Now());
      singleflight_bytes_saved_->Add(NvmeDevice::BusBytes(
          req.span_begin, req.span_end - req.span_begin, req.sub_block));
      RecordJoin(req, p.kind, p.tenant);
      *admission = Admission::kJoinedPending;
    } else {
      cross_request_merges_->Add(1);
      if (obs_merges_ != nullptr) obs_merges_->Add(loop_->Now());
      *admission = Admission::kMergedPending;
    }
    p.service_local = p.service_local && req.service_local;
    p.subscribers.push_back(std::move(req.cb));
    if (!covered) FuseOverlappingPending(i);
    return true;
  }
  return false;
}

bool BatchScheduler::TryPromoteLane(ReadRequest& req, size_t lane_idx,
                                    Admission* admission) {
  Lane& lane = lanes_[lane_idx];
  for (size_t i = 0; i < lane.pending.size(); ++i) {
    PendingRead& q = lane.pending[i];
    bool covered = false;
    if (!Compatible(q, req.span_begin, req.span_end, req.first_block, req.last_block,
                    req.sub_block, &covered)) {
      continue;
    }
    // Merged-read admission: the low-priority SQE moves to the demand batch
    // (demand priority, demand flush triggers) instead of the demand run
    // issuing a second read for overlapping bytes. Admission-domain
    // handoff: a covered promotion stays charged to the lane byte budget
    // (the demand run arrived slot-free via WouldShare and there is no
    // other holder); a span-growing promotion is re-admitted under the
    // demand run's throttle slot — it returns kNewRead so the caller keeps
    // that slot — and its budget bytes are released.
    PendingRead p = std::move(q);
    lane.pending.erase(lane.pending.begin() + static_cast<std::ptrdiff_t>(i));
    const Kind lane_kind = p.kind;
    p.kind = Kind::kDemand;
    p.span_begin = std::min(p.span_begin, req.span_begin);
    p.span_end = std::max(p.span_end, req.span_end);
    p.first_block = std::min(p.first_block, req.first_block);
    p.last_block = std::max(p.last_block, req.last_block);
    p.rows += req.rows;
    p.per_row_bus += req.per_row_bus;
    (lane_kind == Kind::kPrefetch ? prefetch_promoted_ : background_promoted_)->Add(1);
    if (covered) {
      singleflight_hits_->Add(1);
      if (obs_singleflight_ != nullptr) obs_singleflight_->Add(loop_->Now());
      singleflight_bytes_saved_->Add(NvmeDevice::BusBytes(
          req.span_begin, req.span_end - req.span_begin, req.sub_block));
      RecordJoin(req, lane_kind, p.tenant);
      *admission = Admission::kJoinedPending;
    } else {
      lane.pending_bytes -= p.budget_bytes;
      p.budget_bytes = 0;
      p.budget_kind = Kind::kDemand;
      cross_request_merges_->Add(1);
      if (obs_merges_ != nullptr) obs_merges_->Add(loop_->Now());
      *admission = Admission::kNewRead;
    }
    p.service_local = p.service_local && req.service_local;
    p.subscribers.push_back(std::move(req.cb));
    pending_.push_back(std::move(p));
    FuseOverlappingPending(pending_.size() - 1);
    MaybeFlushOrArm();
    return true;
  }
  return false;
}

void BatchScheduler::FuseOverlappingPending(size_t i) {
  // A merge can bridge two previously-independent pending reads (e.g. a
  // run landing between blocks [0] and [2] grows the first SQE to [0,1]
  // while [2,2] still sits in the batch). Fuse everything the grown read
  // now covers or abuts; each fusion can grow it further, so rescan until
  // a pass makes no change.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t j = 0; j < pending_.size(); ++j) {
      if (j == i) continue;
      PendingRead& p = pending_[i];
      PendingRead& q = pending_[j];
      bool covered = false;
      if (!Compatible(p, q.span_begin, q.span_end, q.first_block, q.last_block,
                      q.sub_block, &covered)) {
        continue;
      }
      p.span_begin = std::min(p.span_begin, q.span_begin);
      p.span_end = std::max(p.span_end, q.span_end);
      p.first_block = std::min(p.first_block, q.first_block);
      p.last_block = std::max(p.last_block, q.last_block);
      p.rows += q.rows;
      p.per_row_bus += q.per_row_bus;
      if (q.budget_bytes > 0) {
        if (p.budget_bytes == 0 || p.budget_kind == q.budget_kind) {
          // Budget carries over to the fused read.
          p.budget_bytes += q.budget_bytes;
          p.budget_kind = q.budget_kind;
        } else {
          // Fusing two promoted SQEs whose budgets came from different
          // lanes: release q's charge — the fused read is admitted by p's
          // domain (its slot or budget) alone.
          lanes_[LaneIndex(q.budget_kind)].pending_bytes -= q.budget_bytes;
        }
      }
      p.service_local = p.service_local && q.service_local;
      for (Completion& cb : q.subscribers) p.subscribers.push_back(std::move(cb));
      cross_request_merges_->Add(1);
      if (obs_merges_ != nullptr) obs_merges_->Add(loop_->Now());
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(j));
      if (j < i) --i;
      changed = true;
      break;  // indices shifted; rescan
    }
  }
}

void BatchScheduler::MaybeFlushOrArm() {
  if (static_cast<int>(pending_.size()) >= config_.max_batch_sqes) {
    flush_size_->Add(1);
    Flush();
  } else {
    ArmFlush();
  }
}

void BatchScheduler::ArmFlush() {
  if (flush_armed_) return;
  flush_armed_ = true;
  // Bypass mode: the caller flushes at request boundaries; the delay-0
  // timer only backstops runs enqueued outside one (throttle stragglers).
  // Cross-request mode waits out the batching window so runs from other
  // lookups can pile in.
  const SimDuration delay =
      config_.cross_request ? config_.max_batch_delay : SimDuration(0);
  const uint64_t generation = flush_generation_;
  loop_->ScheduleAfter(delay, [this, generation] {
    if (generation != flush_generation_) return;  // batch already flushed
    if (config_.cross_request) flush_deadline_->Add(1);
    Flush();
  });
}

void BatchScheduler::ArmLaneDrain(size_t lane_idx) {
  Lane& lane = lanes_[lane_idx];
  const LanePolicy policy = Policy(lane_idx);
  if (lane.drain_armed) return;
  if (!policy.drains_despite_demand) {
    // Prefetch: a demand flush is already due and will carry the lane.
    if (flush_armed_) return;
    lane.drain_armed = true;
    const uint64_t generation = flush_generation_;
    loop_->ScheduleAfter(policy.drain_delay, [this, lane_idx, generation] {
      Lane& l = lanes_[lane_idx];
      l.drain_armed = false;
      if (l.pending.empty()) return;
      // Demand arrived meanwhile: its own flush (armed or size-triggered)
      // drains the lane; a prefetch timer must never ring the doorbell
      // early for demand SQEs.
      if (!pending_.empty()) return;
      if (generation != flush_generation_) {
        // A flush rang since arming and still left lane entries (doorbell
        // was full); wait out another window.
        ArmLaneDrain(lane_idx);
        return;
      }
      flush_prefetch_->Add(1);
      Flush();
    });
    return;
  }
  // Background: the timer fires even while foreground keeps the doorbell
  // busy — this is the lane's starvation bound. Ringing early flushes the
  // demand batch too, which only helps demand.
  lane.drain_armed = true;
  loop_->ScheduleAfter(policy.drain_delay, [this, lane_idx] {
    Lane& l = lanes_[lane_idx];
    l.drain_armed = false;
    if (l.pending.empty()) return;
    flush_background_->Add(1);
    Flush();
    if (!l.pending.empty()) ArmLaneDrain(lane_idx);  // doorbell was full
  });
}

void BatchScheduler::DrainParked(size_t lane_idx) {
  Lane& lane = lanes_[lane_idx];
  const LanePolicy policy = Policy(lane_idx);
  while (!lane.parked.empty()) {
    ReadRequest& req = lane.parked.front();
    const Bytes bus = NvmeDevice::BusBytes(req.span_begin, req.span_end - req.span_begin,
                                           req.sub_block);
    // Admit when the budget fits — or unconditionally when the lane is
    // otherwise idle, so a run larger than the whole budget still makes
    // progress instead of parking forever.
    const bool fits =
        lane.pending_bytes + lane.inflight_bytes + bus <= policy.max_inflight_bytes;
    const bool lane_idle = lane.pending.empty() && lane.inflight_bytes == 0;
    if ((!fits && !lane_idle) || lane.pending.size() >= kMaxLaneSqes) return;
    ReadRequest run = std::move(req);
    lane.parked.pop_front();
    // Parked runs re-enter as their own SQE (no join rescan): the caller
    // already accounted them as a new device read when they parked.
    (void)AdmitToLane(run, lane_idx, bus);
  }
}

void BatchScheduler::Flush() {
  ++flush_generation_;
  flush_armed_ = false;

  // Swap the batch out first: completion callbacks scheduled below may
  // re-enter Enqueue (retries) and must see a clean pending list. The
  // low-priority lanes fill whatever doorbell room demand left — background
  // (real demand) before prefetch (speculation).
  std::vector<PendingRead> batch;
  batch.swap(pending_);
  for (Lane& lane : lanes_) {
    while (!lane.pending.empty() &&
           static_cast<int>(batch.size()) < config_.max_batch_sqes) {
      batch.push_back(std::move(lane.pending.front()));
      lane.pending.pop_front();
    }
  }
  if (batch.empty()) return;
  flushes_->Add(1);

  std::vector<IoEngine::ReadOp> ops;
  ops.reserve(batch.size());
  for (PendingRead& p : batch) {
    auto read = std::make_shared<InFlightRead>();
    read->span_begin = p.span_begin;
    read->span_end = p.span_end;
    read->sub_block = p.sub_block;
    read->kind = p.kind;
    read->tenant = p.tenant;
    // The device lands data at its alignment base: the first byte of the
    // first block (block mode) or the DWORD floor of the span (sub-block).
    read->base = p.sub_block ? (p.span_begin & ~(kDwordBytes - 1))
                             : p.first_block * kBlockSize;
    const Bytes length = p.span_end - p.span_begin;
    const Bytes bus = NvmeDevice::BusBytes(p.span_begin, length, p.sub_block);
    // Budget bytes (possibly carried by a promoted/fused SQE) move from
    // pending to in-flight and are released at completion.
    read->budget_bytes = p.budget_bytes;
    read->budget_kind = p.budget_kind;
    if (p.budget_bytes > 0) {
      Lane& budget_lane = lanes_[LaneIndex(p.budget_kind)];
      budget_lane.pending_bytes -= p.budget_bytes;
      budget_lane.inflight_bytes += p.budget_bytes;
    }
    read->buf = arena_->Acquire(bus);
    read->subscribers = std::move(p.subscribers);
    read->issued_at = loop_->Now();
    in_flight_.push_back(read);
    ArmReadResponses(read);
    TenantIoShare& share = Share(p.tenant);
    switch (p.kind) {
      case Kind::kPrefetch:
        prefetch_reads_->Add(1);
        share.prefetch_bytes += bus;
        break;
      case Kind::kBackground:
        background_reads_->Add(1);
        share.background_reads += 1;
        share.background_bytes += bus;
        break;
      case Kind::kDemand:
        device_reads_->Add(1);
        share.demand_reads += 1;
        share.demand_bytes += bus;
        break;
    }

    IoEngine::ReadOp op;
    op.offset = p.span_begin;
    op.length = length;
    op.sub_block = p.sub_block;
    op.dest = std::span<uint8_t>(read->buf->data(), read->buf->size());
    op.merged_reads = std::max<uint32_t>(1, p.rows);
    op.bytes_saved = p.per_row_bus > bus ? p.per_row_bus - bus : 0;
    op.service_local = p.service_local;
    op.cb = [this, read](Status status, SimDuration /*lat*/) {
      CompleteRead(read, std::move(status));
    };
    ops.push_back(std::move(op));
  }
  engine_->SubmitBatch(ops);
  if (obs_sqes_ != nullptr) obs_sqes_->Add(loop_->Now(), batch.size());
  if (obs_inflight_ != nullptr) {
    obs_inflight_->Set(loop_->Now(), static_cast<double>(in_flight_.size()));
  }

  // Lane overflow (doorbell was full): drain on the background timers.
  for (size_t lane = 0; lane < kNumLanes; ++lane) {
    if (!lanes_[lane].pending.empty()) ArmLaneDrain(lane);
  }
}

void BatchScheduler::ArmReadResponses(const std::shared_ptr<InFlightRead>& read) {
  if (config_.io_deadline > SimDuration(0)) {
    loop_->ScheduleAfter(config_.io_deadline, [this, read] { ExpireRead(read); });
  }
  // The hedge threshold adapts to this scheduler's own demand-read p99
  // (per-device: each device has its own scheduler), once enough reads
  // completed to trust the estimate.
  if (config_.hedge_latency_factor > 0 && read->kind == Kind::kDemand &&
      demand_latency_.count() >= config_.hedge_min_samples) {
    const auto p99 = static_cast<double>(demand_latency_.P99());
    const auto delay =
        SimDuration(static_cast<int64_t>(p99 * config_.hedge_latency_factor));
    loop_->ScheduleAfter(delay, [this, read] { MaybeHedge(read); });
  }
}

void BatchScheduler::SettleRead(const std::shared_ptr<InFlightRead>& read,
                                const Status& status, const uint8_t* data) {
  // Unregister before delivering: a subscriber may re-enqueue (retry) and
  // must not join a read that has already settled. Every subscriber — N
  // cross-request waiters joined by single-flight included — hears the
  // outcome exactly once; later completions of the same physical read find
  // the read gone and only release buffers.
  in_flight_.erase(std::find(in_flight_.begin(), in_flight_.end(), read));
  if (read->budget_bytes > 0) {
    lanes_[LaneIndex(read->budget_kind)].inflight_bytes -= read->budget_bytes;
  }
  if (obs_spans_ != nullptr) {
    const char* span_name = read->kind == Kind::kPrefetch      ? "sqe.prefetch"
                            : read->kind == Kind::kBackground  ? "sqe.background"
                                                               : "sqe.demand";
    obs_spans_->Span(obs_track_, span_name, read->issued_at, loop_->Now(),
                     "{\"bytes\":" + std::to_string(read->buf->size()) + "}");
  }
  if (obs_inflight_ != nullptr) {
    obs_inflight_->Set(loop_->Now(), static_cast<double>(in_flight_.size()));
  }
  // Hedge accounting: exactly ONE sample per logical demand read enters the
  // p99 population — the winner's. A losing original finds the read settled
  // (CompleteRead's early return) and records nothing; a replica-served win
  // is excluded outright, since its latency describes the replica's device,
  // not the one this scheduler's hedge threshold watches.
  if (status.ok() && read->kind == Kind::kDemand && !read->suppress_latency_sample) {
    demand_latency_.Record(loop_->Now() - read->issued_at);
    if (obs_read_lat_ != nullptr) {
      obs_read_lat_->Record(loop_->Now(), loop_->Now() - read->issued_at);
    }
  }
  for (Completion& cb : read->subscribers) {
    cb(status, data, read->base);
  }
  read->subscribers.clear();
  // Released budget may admit parked background demand.
  DrainParked(kBackgroundLane);
}

void BatchScheduler::CompleteRead(const std::shared_ptr<InFlightRead>& read,
                                  Status status) {
  if (std::find(in_flight_.begin(), in_flight_.end(), read) == in_flight_.end()) {
    // The deadline expired or a hedge won while this read was at the
    // device: subscribers were already served, so only free the buffer
    // (held until now in case the device memcpy was still due).
    read->buf.reset();
    return;
  }
  SettleRead(read, status, status.ok() ? read->buf->data() : nullptr);
  read->buf.reset();  // return the bounce buffer to the arena promptly
}

void BatchScheduler::ExpireRead(const std::shared_ptr<InFlightRead>& read) {
  if (std::find(in_flight_.begin(), in_flight_.end(), read) == in_flight_.end()) {
    return;  // completed (or hedge-settled) in time
  }
  deadline_expired_->Add(1);
  if (obs_expired_ != nullptr) obs_expired_->Add(loop_->Now());
  if (obs_spans_ != nullptr) obs_spans_->Instant(obs_track_, "deadline_expired", loop_->Now());
  read->expired = true;
  // NOTE: read->buf is NOT released here. A spilled op may still be
  // dispatched later and the device memcpy targets that buffer; the late
  // completion (if it ever comes) frees it, else the submission closure's
  // shared_ptr does.
  SettleRead(read,
             DeadlineExceededError("scheduler read exceeded io_deadline"),
             nullptr);
}

void BatchScheduler::MaybeHedge(const std::shared_ptr<InFlightRead>& read) {
  if (read->hedged ||
      std::find(in_flight_.begin(), in_flight_.end(), read) == in_flight_.end()) {
    return;  // already settled, or a hedge is already racing
  }
  read->hedged = true;
  hedges_issued_->Add(1);
  if (obs_hedges_ != nullptr) obs_hedges_->Add(loop_->Now());
  if (obs_spans_ != nullptr) obs_spans_->Instant(obs_track_, "hedge", loop_->Now());
  const Bytes length = read->span_end - read->span_begin;
  read->hedge_buf = arena_->Acquire(read->buf->size());
  // Cross-replica hedging: when the span has a healthy replica, the
  // duplicate goes THERE — a slow primary is often slow (or sick) for every
  // read, so re-queueing on it mostly doubles its load. The replica holds
  // byte-identical content at a block-aligned shift, so the hedge buffer
  // still maps subscribers' primary-space offsets via read->base.
  IoEngine* engine = engine_;
  Bytes offset = read->span_begin;
  if (replica_peer_fn_) {
    if (const auto peer = replica_peer_fn_(read->span_begin, read->span_end);
        peer.has_value()) {
      engine = peer->engine;
      offset = static_cast<Bytes>(static_cast<int64_t>(read->span_begin) + peer->shift);
      read->hedge_on_replica = true;
      replica_hedges_->Add(1);
    }
  }
  engine->SubmitRead(offset, length, read->sub_block,
                     std::span<uint8_t>(read->hedge_buf->data(), read->hedge_buf->size()),
                     [this, read](Status status, SimDuration /*lat*/) {
                       CompleteHedge(read, std::move(status));
                     });
}

void BatchScheduler::CompleteHedge(const std::shared_ptr<InFlightRead>& read,
                                   Status status) {
  if (std::find(in_flight_.begin(), in_flight_.end(), read) == in_flight_.end()) {
    read->hedge_buf.reset();  // the original won (or the deadline fired)
    return;
  }
  if (!status.ok()) {
    // A failed hedge must not fail the read: the original is still in
    // flight and keeps its own deadline/retry story.
    read->hedge_buf.reset();
    return;
  }
  hedges_won_->Add(1);
  if (read->hedge_on_replica) {
    replica_hedge_wins_->Add(1);
    read->suppress_latency_sample = true;
  }
  SettleRead(read, status, read->hedge_buf->data());
  read->hedge_buf.reset();
  // read->buf stays held for the original's late completion (see
  // CompleteRead's settled-read path).
}

}  // namespace sdm
