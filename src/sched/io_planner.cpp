#include "sched/io_planner.h"

#include <algorithm>

#include "device/nvme_device.h"

namespace sdm {

IoPlan IoPlanner::Plan(std::vector<Miss> misses, const PlannerConfig& config) {
  std::sort(misses.begin(), misses.end(),
            [](const Miss& a, const Miss& b) { return a.offset < b.offset; });

  const Bytes rb = config.row_bytes;
  IoPlan plan;
  for (const Miss& m : misses) {
    const uint64_t block = m.offset / kBlockSize;
    if (block != (m.offset + rb - 1) / kBlockSize) {
      plan.fallback_slots.push_back(m.slot);
      continue;
    }
    const Bytes end = m.offset + rb;
    const Bytes solo_bus = NvmeDevice::BusBytes(m.offset, rb, config.sub_block);
    bool merged = false;
    if (!plan.runs.empty()) {
      PlannedRun& r = plan.runs.back();
      // Block path: whole blocks cross the bus anyway, so same-block rows
      // always share one read and adjacent blocks merge up to the cap.
      // Sub-block path: merge only across small dead gaps (request-merging
      // semantics) so scattered rows don't inflate bus traffic.
      const bool gap_ok =
          !config.sub_block || m.offset - r.span_end <= config.coalesce_gap_bytes;
      if (block == r.last_block) {
        merged = gap_ok;
      } else if (block == r.last_block + 1 &&
                 (block - r.first_block + 1) * kBlockSize <= config.max_coalesce_bytes) {
        merged = gap_ok;
      }
      if (merged) {
        r.last_block = block;
        r.span_end = end;
        r.slot_indices.push_back(m.slot);
        r.per_row_bus += solo_bus;
      }
    }
    if (!merged) {
      PlannedRun r;
      r.first_block = block;
      r.last_block = block;
      r.span_begin = m.offset;
      r.span_end = end;
      r.slot_indices = {m.slot};
      r.per_row_bus = solo_bus;
      plan.runs.push_back(std::move(r));
    }
  }
  return plan;
}

}  // namespace sdm
