// IoPlanner — pure, device-free planning of coalesced embedding reads.
//
// Extracted from LookupEngine::StartIoPhase so the dedup/grouping policy is
// unit-testable without an event loop and reusable by any component that
// turns row misses into device reads (lookups today; prefetchers and model
// updaters tomorrow). The planner answers one question: given a set of
// missing rows on one device, which byte spans should be read?
//
//  - misses are sorted by device offset and grouped by 4KB block: N rows in
//    one block cost one read;
//  - adjacent blocks merge into multi-block runs up to `max_coalesce_bytes`;
//  - in sub-block (SGL) mode a merge may only bridge a dead gap of
//    `coalesce_gap_bytes` between consecutive rows, so scattered rows don't
//    inflate bus traffic (block-layer request-merging semantics);
//  - rows straddling a block boundary are returned as fallbacks for the
//    caller's per-row path.
//
// Planning is per-request; cross-request combining of the planned runs is
// the BatchScheduler's job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sdm {

/// One planned device read: a run of same-or-adjacent-block rows served by
/// a single SQE and scattered back to its slots at completion.
struct PlannedRun {
  uint64_t first_block = 0;
  uint64_t last_block = 0;
  Bytes span_begin = 0;  ///< device offset of the first useful byte
  Bytes span_end = 0;    ///< one past the last useful byte
  /// Caller-defined handles (LookupEngine: request slot indices) of the
  /// rows this run carries, in device-offset order.
  std::vector<uint32_t> slot_indices;
  /// Bus bytes the per-row path would have moved for these rows.
  Bytes per_row_bus = 0;
};

struct IoPlan {
  std::vector<PlannedRun> runs;
  /// Rows that straddle a 4KB block boundary; the caller must issue these
  /// through its un-coalesced per-row path.
  std::vector<uint32_t> fallback_slots;

  [[nodiscard]] size_t TotalIos() const { return runs.size() + fallback_slots.size(); }
};

struct PlannerConfig {
  Bytes row_bytes = 0;
  /// SGL bit-bucket mode: spans are DWORD- instead of block-rounded on the
  /// bus, and merges are gap-bounded.
  bool sub_block = false;
  Bytes max_coalesce_bytes = 64 * kKiB;
  Bytes coalesce_gap_bytes = 512;
};

class IoPlanner {
 public:
  /// One missing row: an opaque caller handle plus its device byte offset.
  struct Miss {
    uint32_t slot = 0;
    Bytes offset = 0;
  };

  /// Pure function of (misses, config); `misses` may arrive in any order.
  [[nodiscard]] static IoPlan Plan(std::vector<Miss> misses, const PlannerConfig& config);
};

}  // namespace sdm
