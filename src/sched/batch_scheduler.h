// BatchScheduler — cross-request IO batching for one SM device.
//
// The IoPlanner decides *what* to read for one lookup; the scheduler
// decides *when* and *how often*. It accumulates planned runs from every
// concurrent lookup on the host and:
//
//  - single-flights duplicate work: a run whose span is already covered by
//    a pending or in-flight read subscribes to that read instead of issuing
//    its own (N requests missing the same hot block share one device read);
//  - merges overlapping/adjacent spans across requests into one SQE, the
//    same policy the planner applies within a request;
//  - flushes the accumulated batch as ONE ring doorbell
//    (IoEngine::SubmitBatch) when it reaches `max_batch_sqes`, or at the
//    `max_batch_delay` deadline armed by the first run of the batch — so a
//    lone run is never starved waiting for co-travellers.
//
// Priority lanes: every ReadRequest carries a Kind. kDemand runs behave as
// above. kPrefetch runs (speculative readahead from src/prefetch) form a
// LOW-PRIORITY lane with strictly weaker rights:
//
//  - they never trigger a size or deadline flush of the demand batch; they
//    ride whatever doorbell room a demand flush leaves (up to
//    max_batch_sqes total), and a prefetch-only lane drains on its own
//    unhurried `prefetch_flush_delay` timer only when no demand is pending;
//  - they are admitted against a byte budget (`prefetch_max_inflight_bytes`
//    across pending + in-flight prefetch reads) and are DROPPED — not
//    queued — when it is exhausted, so speculation can never starve demand
//    of ring slots or arena buffers;
//  - a demand run that overlaps a pending prefetch SQE PROMOTES it into the
//    demand batch (merged-read admission): the speculative read upgrades to
//    demand priority instead of issuing twice, and joining an in-flight
//    prefetch read is an ordinary single-flight hit.
//
// With `cross_request = false` the scheduler never merges or single-flights
// across enqueues, and the prefetch lane is INERT (prefetch enqueues
// assert/drop) so the per-request ablation baseline stays byte-identical;
// the caller delimits each batch with Flush() (LookupEngine flushes after
// submitting a request's runs), so every request rings its own doorbell. A
// delay-0 timer still backstops runs enqueued outside a caller flush (e.g.
// throttle stragglers).
//
// Buffers: a read's bounce buffer is acquired from the shared BufferArena
// at flush time (pending spans may still grow) and is released when the
// last subscriber callback returns. Subscribers receive a borrowed pointer
// into the buffer plus the device byte its first byte corresponds to; they
// must copy what they need during the callback.
//
// Single-threaded by design: all scheduling happens on the EventLoop
// thread, like the rest of the IO path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_loop.h"
#include "common/stats.h"
#include "io/buffer_arena.h"
#include "io/io_engine.h"

namespace sdm {

/// Effectiveness counters of one scheduler (or, aggregated by SdmStore,
/// of every scheduler on a host) — the single home of the occupancy math.
struct CrossRequestIoStats {
  uint64_t device_reads = 0;          ///< demand SQEs actually issued
  uint64_t cross_request_merges = 0;  ///< spans fused across requests
  uint64_t singleflight_hits = 0;     ///< runs served by another request's read
  uint64_t singleflight_bytes_saved = 0;
  uint64_t flushes = 0;  ///< ring doorbells
  // ---- Prefetch lane ----
  uint64_t prefetch_reads = 0;     ///< prefetch SQEs issued to the device
  uint64_t prefetch_dropped = 0;   ///< prefetch runs rejected at admission
  uint64_t prefetch_promoted = 0;  ///< prefetch reads upgraded/joined by demand
  /// Mean SQEs (both lanes) per ring doorbell (0 when no doorbell rang yet).
  [[nodiscard]] double BatchOccupancy() const {
    return flushes == 0 ? 0
                        : static_cast<double>(device_reads + prefetch_reads) /
                              static_cast<double>(flushes);
  }
};

struct BatchSchedulerConfig {
  /// Combine reads across concurrent requests. false = bypass (per-request
  /// batches, no sharing, prefetch lane inert) for ablation.
  bool cross_request = true;
  /// Flush when this many SQEs have accumulated.
  int max_batch_sqes = 64;
  /// Flush deadline, armed when the first run enters an empty batch. Zero
  /// means "the end of the current virtual instant": runs submitted at the
  /// same timestamp still share a doorbell, but no latency is added.
  SimDuration max_batch_delay{0};
  /// Span cap for cross-request merging (same knob the planner uses).
  Bytes max_coalesce_bytes = 64 * kKiB;
  /// Largest dead gap a sub-block (SGL) merge may bridge across requests.
  Bytes coalesce_gap_bytes = 512;
  /// Byte budget of the prefetch lane: pending + in-flight prefetch reads
  /// (bus bytes) above this are dropped at admission.
  Bytes prefetch_max_inflight_bytes = 256 * kKiB;
  /// Drain timer for a prefetch-only lane (no demand pending to ride).
  /// Deliberately longer than typical demand deadlines: background work.
  SimDuration prefetch_flush_delay = Micros(5);
};

class BatchScheduler {
 public:
  /// Read completion. On success `data` points at the shared bounce buffer
  /// and `base` is the device byte offset of data[0]; the row at device
  /// offset `o` lives at data + (o - base). Both are valid only for the
  /// duration of the callback. On error `data` is nullptr. Dropped prefetch
  /// runs never invoke their callback (Enqueue returns kDropped instead).
  using Completion = std::function<void(Status, const uint8_t* data, Bytes base)>;

  /// One planned run, as produced by the IoPlanner (plus its completion).
  struct ReadRequest {
    /// Scheduling lane (see file header). Prefetch is strictly lower
    /// priority: no flush rights, byte-budgeted, dropped under pressure.
    enum class Kind : uint8_t { kDemand, kPrefetch };

    Bytes span_begin = 0;
    Bytes span_end = 0;
    uint64_t first_block = 0;
    uint64_t last_block = 0;
    bool sub_block = false;
    Kind kind = Kind::kDemand;
    /// Logical per-row reads this run coalesces (engine counter fodder);
    /// retries pass 0 so the same rows are not counted twice.
    uint32_t rows = 0;
    /// Bus bytes the per-row path would have moved for those rows.
    Bytes per_row_bus = 0;
    Completion cb;
  };

  /// How a run was admitted — returned synchronously so the caller can keep
  /// per-request accounting (a shared read is not a new device read).
  enum class Admission : uint8_t {
    kNewRead,         ///< became a new SQE in the accumulating batch
    kMergedPending,   ///< extended a not-yet-flushed SQE from another request
    kJoinedPending,   ///< fully covered by a not-yet-flushed SQE
    kJoinedInFlight,  ///< fully covered by a read already at the device
    kDropped,         ///< prefetch lane over budget (never demand); cb discarded
  };

  BatchScheduler(IoEngine* engine, BufferArena* arena, EventLoop* loop,
                 BatchSchedulerConfig config);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  Admission Enqueue(ReadRequest req);

  /// Whether a demand run with this shape would be admitted WITHOUT a new
  /// device read (joined or merged into existing pending/in-flight work).
  /// Callers use this for scheduler-aware throttle admission: a run that
  /// will share needs no outstanding-IO slot, so it must not queue for one
  /// — by the time a slot frees, the read it would have joined may have
  /// retired. Exact (not heuristic) when the Enqueue follows on the same
  /// event-loop turn, since scheduler state only changes on this thread.
  [[nodiscard]] bool WouldShare(Bytes span_begin, Bytes span_end, uint64_t first_block,
                                uint64_t last_block, bool sub_block) const;

  /// Flushes the accumulating batch immediately (tests; drain paths).
  /// Pending prefetch SQEs ride along up to the doorbell's free room.
  void Flush();

  [[nodiscard]] size_t pending_sqes() const { return pending_.size(); }
  [[nodiscard]] size_t prefetch_pending_sqes() const { return prefetch_pending_.size(); }
  [[nodiscard]] size_t in_flight_reads() const { return in_flight_.size(); }
  [[nodiscard]] Bytes prefetch_budget_used() const {
    return prefetch_pending_bytes_ + prefetch_inflight_bytes_;
  }
  [[nodiscard]] const BatchSchedulerConfig& config() const { return config_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  [[nodiscard]] CrossRequestIoStats Snapshot() const;

  /// Mean SQEs per ring doorbell — the amortization the paper's io_uring
  /// deployment lives on (§4).
  [[nodiscard]] double BatchOccupancy() const { return Snapshot().BatchOccupancy(); }

 private:
  /// An SQE accumulating in the unflushed batch (either lane).
  struct PendingRead {
    Bytes span_begin = 0;
    Bytes span_end = 0;
    uint64_t first_block = 0;
    uint64_t last_block = 0;
    bool sub_block = false;
    bool prefetch = false;
    /// Bus bytes this SQE holds against the prefetch byte budget. Every
    /// device read is admitted by exactly one domain: a throttle slot on
    /// the demand side, or these bytes on the speculation side. A
    /// covered-promotion keeps its budget (no slot ever existed for it);
    /// a merge-promotion transfers to the demand run's slot and zeroes it.
    Bytes prefetch_budget_bytes = 0;
    uint32_t rows = 0;
    Bytes per_row_bus = 0;
    std::vector<Completion> subscribers;
  };

  /// A read submitted to the engine and not yet completed. Late arrivals
  /// whose span it covers subscribe here (single-flight on in-flight IO).
  struct InFlightRead {
    Bytes span_begin = 0;
    Bytes span_end = 0;
    Bytes base = 0;
    bool sub_block = false;
    bool prefetch = false;
    Bytes prefetch_budget_bytes = 0;  ///< released when the read completes
    std::shared_ptr<BufferArena::Buffer> buf;
    std::vector<Completion> subscribers;
  };

  /// Memory backstop on the lane's SQE count (the byte budget is the real
  /// admission control; this only bounds a degenerate many-tiny-spans lane).
  static constexpr size_t kMaxLaneSqes = 256;

  /// Whether [begin, end) (blocks [first_block, last_block]) can ride on
  /// pending read `p`: fully covered by what `p` will pull across the bus
  /// (`*covered` = true), or fusable under the cap/gap merge rules.
  [[nodiscard]] bool Compatible(const PendingRead& p, Bytes begin, Bytes end,
                                uint64_t first_block, uint64_t last_block,
                                bool sub_block, bool* covered) const;
  [[nodiscard]] Admission EnqueueDemand(ReadRequest& req);
  [[nodiscard]] Admission EnqueuePrefetch(ReadRequest& req);
  [[nodiscard]] bool TryAbsorbIntoPending(ReadRequest& req, Admission* admission);
  [[nodiscard]] bool TryJoinInFlight(ReadRequest& req);
  /// Demand-side probe of the prefetch lane: a compatible pending prefetch
  /// SQE is moved into the demand batch (promotion) and the run rides it.
  [[nodiscard]] bool TryPromotePrefetch(ReadRequest& req, Admission* admission);
  /// After pending_[i] grew, fuses any other pending reads it now covers
  /// or abuts, so one block never crosses the bus twice in one flush.
  void FuseOverlappingPending(size_t i);
  /// Size-trigger / deadline arming after the demand batch grew.
  void MaybeFlushOrArm();
  void ArmFlush();
  void ArmPrefetchFlush();
  void CompleteRead(const std::shared_ptr<InFlightRead>& read, Status status);
  [[nodiscard]] Bytes BusOf(const PendingRead& p) const;

  IoEngine* engine_;
  BufferArena* arena_;
  EventLoop* loop_;
  BatchSchedulerConfig config_;

  std::vector<PendingRead> pending_;
  /// Low-priority lane: prefetch SQEs waiting for doorbell room. FIFO —
  /// oldest predictions flush first.
  std::deque<PendingRead> prefetch_pending_;
  Bytes prefetch_pending_bytes_ = 0;
  Bytes prefetch_inflight_bytes_ = 0;
  std::vector<std::shared_ptr<InFlightRead>> in_flight_;
  /// Invalidates armed flush timers when the batch they were armed for has
  /// already been flushed by the size trigger.
  uint64_t flush_generation_ = 0;
  bool flush_armed_ = false;
  bool prefetch_flush_armed_ = false;

  StatsRegistry stats_;
  Counter* enqueued_ = nullptr;
  Counter* device_reads_ = nullptr;
  Counter* cross_request_merges_ = nullptr;
  Counter* singleflight_hits_ = nullptr;
  Counter* singleflight_bytes_saved_ = nullptr;
  Counter* flushes_ = nullptr;
  Counter* flush_deadline_ = nullptr;
  Counter* flush_size_ = nullptr;
  Counter* flush_prefetch_ = nullptr;
  Counter* prefetch_enqueued_ = nullptr;
  Counter* prefetch_reads_ = nullptr;
  Counter* prefetch_dropped_ = nullptr;
  Counter* prefetch_promoted_ = nullptr;
  Counter* prefetch_singleflight_ = nullptr;
};

}  // namespace sdm
