// BatchScheduler — cross-request IO batching for one SM device.
//
// The IoPlanner decides *what* to read for one lookup; the scheduler
// decides *when* and *how often*. It accumulates planned runs from every
// concurrent lookup on the host and:
//
//  - single-flights duplicate work: a run whose span is already covered by
//    a pending or in-flight read subscribes to that read instead of issuing
//    its own (N requests missing the same hot block share one device read);
//  - merges overlapping/adjacent spans across requests into one SQE, the
//    same policy the planner applies within a request;
//  - flushes the accumulated batch as ONE ring doorbell
//    (IoEngine::SubmitBatch) when it reaches `max_batch_sqes`, or at the
//    `max_batch_delay` deadline armed by the first run of the batch — so a
//    lone run is never starved waiting for co-travellers.
//
// Priority lanes: every ReadRequest carries a Kind, and each Kind maps to a
// row of a small lane-policy table (LanePolicy). kDemand runs behave as
// above: full flush rights, never parked or dropped. The two LOW-PRIORITY
// lanes have strictly weaker rights — they never trigger a size or deadline
// flush of the demand batch, they ride whatever doorbell room a demand
// flush leaves (up to max_batch_sqes total), and they are admitted against
// a per-lane byte budget (pending + in-flight bus bytes) — but they differ
// in what happens under pressure, because one carries speculation and the
// other carries real demand:
//
//  - kPrefetch (speculative readahead from src/prefetch) is DROPPED — not
//    queued — when over budget, so speculation can never starve demand of
//    ring slots or arena buffers; a prefetch-only lane drains on its own
//    unhurried `prefetch_flush_delay` timer only when no demand is pending;
//    a demand run that overlaps a pending prefetch SQE PROMOTES it into the
//    demand batch (merged-read admission).
//  - kBackground (demand reads of background-class tenants, src/tenant) is
//    PARKED when over budget: the run waits in FIFO order and is admitted
//    as budget releases — background demand is correctness-bearing and must
//    eventually run. Its drain timer (`background_flush_delay`) fires even
//    while foreground demand keeps the doorbell busy, which bounds how long
//    sustained foreground pressure can starve a background SQE. Foreground
//    overlap promotes a pending background SQE exactly like a prefetch one.
//
// With `cross_request = false` the scheduler never merges or single-flights
// across enqueues, and both low-priority lanes are INERT (their enqueues
// assert/drop) so the per-request ablation baseline stays byte-identical;
// the caller delimits each batch with Flush() (LookupEngine flushes after
// submitting a request's runs), so every request rings its own doorbell. A
// delay-0 timer still backstops runs enqueued outside a caller flush (e.g.
// throttle stragglers).
//
// Multi-tenant attribution: every ReadRequest names its tenant (0 for the
// single tenant of an owned-device store). The scheduler keeps a per-tenant
// TenantIoShare ledger — bus bytes issued per lane (the fair-share
// accounting a shared-device operator bills on) and how often one tenant's
// runs were served by a read another tenant owns (the §5.3 co-location win
// at IO granularity). HOST attribution on a disaggregated, fabric-attached
// device (src/fabric) rides the same field: each cluster host registers as
// one tenant of the shared service, so TenantIoShare doubles as the
// per-HOST fair-share ledger and `cross_tenant_hits` counts cross-HOST
// single-flight — the scheduler itself needs no cluster awareness.
//
// Buffers: a read's bounce buffer is acquired from the shared BufferArena
// at flush time (pending spans may still grow) and is released when the
// last subscriber callback returns. Subscribers receive a borrowed pointer
// into the buffer plus the device byte its first byte corresponds to; they
// must copy what they need during the callback.
//
// Single-threaded by design: all scheduling happens on the EventLoop
// thread, like the rest of the IO path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "io/buffer_arena.h"
#include "io/io_engine.h"
#include "obs/observability.h"

namespace sdm {

/// Effectiveness counters of one scheduler (or, aggregated by SdmStore,
/// of every scheduler on a host) — the single home of the occupancy math.
struct CrossRequestIoStats {
  uint64_t device_reads = 0;          ///< demand SQEs actually issued
  uint64_t cross_request_merges = 0;  ///< spans fused across requests
  uint64_t singleflight_hits = 0;     ///< runs served by another request's read
  uint64_t singleflight_bytes_saved = 0;
  uint64_t flushes = 0;  ///< ring doorbells
  // ---- Prefetch lane ----
  uint64_t prefetch_reads = 0;     ///< prefetch SQEs issued to the device
  uint64_t prefetch_dropped = 0;   ///< prefetch runs rejected at admission
  uint64_t prefetch_promoted = 0;  ///< prefetch reads upgraded/joined by demand
  // ---- Background lane (background-tenant demand, src/tenant) ----
  uint64_t background_reads = 0;     ///< background SQEs issued to the device
  uint64_t background_parked = 0;    ///< runs deferred by the lane byte budget
  uint64_t background_promoted = 0;  ///< background SQEs upgraded by foreground
  // ---- Fault-tolerance responses (src/fault) ----
  uint64_t deadline_expired = 0;  ///< reads abandoned past the IO deadline
  uint64_t hedges_issued = 0;     ///< duplicate reads submitted for slow IOs
  uint64_t hedges_won = 0;        ///< hedges that delivered before the original
  uint64_t replica_hedges = 0;    ///< hedges routed to a replica device
  /// Mean SQEs (all lanes) per ring doorbell (0 when no doorbell rang yet).
  [[nodiscard]] double BatchOccupancy() const {
    return flushes == 0 ? 0
                        : static_cast<double>(device_reads + background_reads +
                                              prefetch_reads) /
                              static_cast<double>(flushes);
  }

  /// This-minus-base, field by field. Counters are cumulative across runs;
  /// every run report subtracts its start-of-run snapshot through here.
  [[nodiscard]] CrossRequestIoStats Since(const CrossRequestIoStats& base) const;
};

/// One tenant's slice of a scheduler's device traffic — the fair-share
/// ledger of a shared device (src/tenant). Bytes are bus bytes of SQEs the
/// tenant OWNED (first enqueuer); riders pay nothing, which is the point.
struct TenantIoShare {
  uint64_t demand_reads = 0;  ///< foreground-lane SQEs owned
  Bytes demand_bytes = 0;     ///< bus bytes of those SQEs
  uint64_t background_reads = 0;
  Bytes background_bytes = 0;
  Bytes prefetch_bytes = 0;
  uint64_t singleflight_hits = 0;  ///< runs served by an existing read
  uint64_t cross_tenant_hits = 0;  ///< ...whose read another tenant owns
  Bytes cross_tenant_bytes_saved = 0;

  /// This-minus-base per-run delta (see CrossRequestIoStats::Since).
  [[nodiscard]] TenantIoShare Since(const TenantIoShare& base) const;
};

struct BatchSchedulerConfig {
  /// Combine reads across concurrent requests. false = bypass (per-request
  /// batches, no sharing, low-priority lanes inert) for ablation.
  bool cross_request = true;
  /// Flush when this many SQEs have accumulated.
  int max_batch_sqes = 64;
  /// Flush deadline, armed when the first run enters an empty batch. Zero
  /// means "the end of the current virtual instant": runs submitted at the
  /// same timestamp still share a doorbell, but no latency is added.
  SimDuration max_batch_delay{0};
  /// Span cap for cross-request merging (same knob the planner uses).
  Bytes max_coalesce_bytes = 64 * kKiB;
  /// Largest dead gap a sub-block (SGL) merge may bridge across requests.
  Bytes coalesce_gap_bytes = 512;
  /// Byte budget of the prefetch lane: pending + in-flight prefetch reads
  /// (bus bytes) above this are dropped at admission.
  Bytes prefetch_max_inflight_bytes = 256 * kKiB;
  /// Drain timer for a prefetch-only lane (no demand pending to ride).
  /// Deliberately longer than typical demand deadlines: background work.
  SimDuration prefetch_flush_delay = Micros(5);
  /// Byte budget of the background lane: pending + in-flight background
  /// reads above this are PARKED (FIFO) until budget releases — the cap on
  /// how much device occupancy background tenants can hold at once.
  Bytes background_max_inflight_bytes = 256 * kKiB;
  /// Drain timer of the background lane. Unlike the prefetch timer it fires
  /// even while demand is pending, so this is the starvation bound: a
  /// background SQE waits at most this long for a doorbell of its own.
  /// Clamped up to max_batch_delay at construction — a starvation bound
  /// must never hand background demand a faster doorbell than foreground's
  /// own batching window.
  SimDuration background_flush_delay = Micros(10);
  /// Deadline on every issued read, armed at its flush doorbell. A read
  /// that has not completed by then delivers kDeadlineExceeded to every
  /// subscriber (once) and releases its lane budget — the rescue for
  /// stalled devices and fabric-dropped transfers. Zero disables deadlines
  /// (byte-identical to pre-deadline behavior).
  SimDuration io_deadline{0};
  /// Hedged reads: an in-flight DEMAND read still incomplete after
  /// `hedge_latency_factor * p99` of this scheduler's observed demand-read
  /// latency gets a duplicate submission; the first completion wins and the
  /// loser's payload is discarded. Zero disables hedging.
  double hedge_latency_factor = 0;
  /// Completed demand reads required before the adaptive p99 threshold
  /// arms (the estimate needs a population).
  uint64_t hedge_min_samples = 64;
};

class BatchScheduler {
 public:
  /// Read completion. On success `data` points at the shared bounce buffer
  /// and `base` is the device byte offset of data[0]; the row at device
  /// offset `o` lives at data + (o - base). Both are valid only for the
  /// duration of the callback. On error `data` is nullptr. Dropped prefetch
  /// runs never invoke their callback (Enqueue returns kDropped instead).
  using Completion = std::function<void(Status, const uint8_t* data, Bytes base)>;

  /// One planned run, as produced by the IoPlanner (plus its completion).
  struct ReadRequest {
    /// Scheduling lane (see file header). kDemand has full flush rights;
    /// kBackground is byte-budgeted background-tenant demand (parked under
    /// pressure); kPrefetch is byte-budgeted speculation (dropped under
    /// pressure). Order matters: lanes fill doorbell room in Kind order.
    enum class Kind : uint8_t { kDemand = 0, kBackground = 1, kPrefetch = 2 };

    Bytes span_begin = 0;
    Bytes span_end = 0;
    uint64_t first_block = 0;
    uint64_t last_block = 0;
    bool sub_block = false;
    Kind kind = Kind::kDemand;
    /// Owning tenant for fair-share attribution (0 = single owned-device
    /// tenant). Purely accounting; scheduling policy keys off `kind`.
    uint32_t tenant = 0;
    /// Logical per-row reads this run coalesces (engine counter fodder);
    /// retries pass 0 so the same rows are not counted twice.
    uint32_t rows = 0;
    /// Bus bytes the per-row path would have moved for those rows.
    Bytes per_row_bus = 0;
    /// Both endpoints of this read live on the device side (e.g. a
    /// re-replication copy chunk): on a fabric-attached stack the SQE and
    /// its payload never cross the host fabric. Cleared if any serving-path
    /// request merges into the same SQE — its payload must reach a host.
    bool service_local = false;
    Completion cb;
  };

  /// How a run was admitted — returned synchronously so the caller can keep
  /// per-request accounting (a shared read is not a new device read).
  enum class Admission : uint8_t {
    kNewRead,         ///< became a new SQE in the accumulating batch (a
                      ///< parked background run also reports this: it WILL
                      ///< become its own SQE once the lane budget admits it)
    kMergedPending,   ///< extended a not-yet-flushed SQE from another request
    kJoinedPending,   ///< fully covered by a not-yet-flushed SQE
    kJoinedInFlight,  ///< fully covered by a read already at the device
    kDropped,         ///< prefetch lane over budget (never demand); cb discarded
  };

  BatchScheduler(IoEngine* engine, BufferArena* arena, EventLoop* loop,
                 BatchSchedulerConfig config);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  Admission Enqueue(ReadRequest req);

  /// Cross-replica hedging (self-healing layer, src/fault): where a slow
  /// demand read's duplicate may go instead of the same — possibly sick —
  /// device. `shift` is the block-aligned offset delta from primary space
  /// to the replica's bytes on `engine`'s device.
  struct ReplicaPeer {
    IoEngine* engine = nullptr;
    int64_t shift = 0;
  };
  /// Installs the span -> replica resolver consulted at hedge time; the
  /// default (none) hedges on this scheduler's own engine as before.
  void set_replica_peer(
      std::function<std::optional<ReplicaPeer>(Bytes begin, Bytes end)> fn) {
    replica_peer_fn_ = std::move(fn);
  }

  /// Demand-read latency samples recorded so far. Exactly one sample lands
  /// per successful logical demand read — the winner of a hedge race, and
  /// never a replica-served hedge (whose latency would pollute THIS
  /// device's p99 estimate that arms the hedge timer).
  [[nodiscard]] uint64_t demand_latency_samples() const {
    return demand_latency_.count();
  }

  /// Whether a demand run with this shape would be admitted WITHOUT a new
  /// device read (joined or merged into existing pending/in-flight work).
  /// Callers use this for scheduler-aware throttle admission: a run that
  /// will share needs no outstanding-IO slot, so it must not queue for one
  /// — by the time a slot frees, the read it would have joined may have
  /// retired. Exact (not heuristic) when the Enqueue follows on the same
  /// event-loop turn, since scheduler state only changes on this thread.
  [[nodiscard]] bool WouldShare(Bytes span_begin, Bytes span_end, uint64_t first_block,
                                uint64_t last_block, bool sub_block) const;

  /// Flushes the accumulating batch immediately (tests; drain paths).
  /// Pending background and prefetch SQEs ride along, in that order, up to
  /// the doorbell's free room.
  void Flush();

  [[nodiscard]] size_t pending_sqes() const { return pending_.size(); }
  [[nodiscard]] size_t background_pending_sqes() const {
    return lanes_[kBackgroundLane].pending.size();
  }
  [[nodiscard]] size_t background_parked_runs() const {
    return lanes_[kBackgroundLane].parked.size();
  }
  [[nodiscard]] Bytes background_budget_used() const {
    return lanes_[kBackgroundLane].pending_bytes + lanes_[kBackgroundLane].inflight_bytes;
  }
  [[nodiscard]] size_t prefetch_pending_sqes() const {
    return lanes_[kPrefetchLane].pending.size();
  }
  [[nodiscard]] Bytes prefetch_budget_used() const {
    return lanes_[kPrefetchLane].pending_bytes + lanes_[kPrefetchLane].inflight_bytes;
  }
  [[nodiscard]] size_t in_flight_reads() const { return in_flight_.size(); }
  [[nodiscard]] const BatchSchedulerConfig& config() const { return config_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  [[nodiscard]] CrossRequestIoStats Snapshot() const;

  /// Fair-share ledger of one tenant (zeroes for a tenant this scheduler
  /// has not seen). `tenant_span` is 1 + the highest tenant id seen.
  [[nodiscard]] TenantIoShare tenant_share(uint32_t tenant) const;
  [[nodiscard]] size_t tenant_span() const { return tenant_shares_.size(); }

  /// Mean SQEs per ring doorbell — the amortization the paper's io_uring
  /// deployment lives on (§4).
  [[nodiscard]] double BatchOccupancy() const { return Snapshot().BatchOccupancy(); }

  /// Observability (src/obs): registers this scheduler's windowed metrics
  /// under `<name>sched/` and its trace track. Null (or metrics-off) obs
  /// leaves every handle null, so recording stays a dead branch.
  void set_obs(Observability* obs, const std::string& name);

 private:
  using Kind = ReadRequest::Kind;

  /// An SQE accumulating in the unflushed batch (any lane).
  struct PendingRead {
    Bytes span_begin = 0;
    Bytes span_end = 0;
    uint64_t first_block = 0;
    uint64_t last_block = 0;
    bool sub_block = false;
    Kind kind = Kind::kDemand;
    uint32_t tenant = 0;  ///< owner (first enqueuer) for fair-share billing
    /// Bus bytes this SQE holds against its lane's byte budget. Every
    /// device read is admitted by exactly one domain: a throttle slot on
    /// the demand side, or these bytes on a low-priority lane. A
    /// covered-promotion keeps its budget (no slot ever existed for it);
    /// a merge-promotion transfers to the demand run's slot and zeroes it.
    Bytes budget_bytes = 0;
    /// Lane the budget is charged against (survives promotion to demand;
    /// kDemand means "no budget held").
    Kind budget_kind = Kind::kDemand;
    uint32_t rows = 0;
    Bytes per_row_bus = 0;
    /// AND of every participant's ReadRequest::service_local: the SQE may
    /// skip the host fabric only if NO subscriber needs the payload host-side.
    bool service_local = false;
    std::vector<Completion> subscribers;
  };

  /// A read submitted to the engine and not yet completed. Late arrivals
  /// whose span it covers subscribe here (single-flight on in-flight IO).
  struct InFlightRead {
    Bytes span_begin = 0;
    Bytes span_end = 0;
    Bytes base = 0;
    bool sub_block = false;
    Kind kind = Kind::kDemand;
    uint32_t tenant = 0;
    Bytes budget_bytes = 0;  ///< released to the lane when the read completes
    Kind budget_kind = Kind::kDemand;
    SimTime issued_at;       ///< doorbell time (deadline/hedge anchors)
    bool expired = false;    ///< deadline fired; subscribers already served
    bool hedged = false;     ///< a duplicate submission is in flight
    bool hedge_on_replica = false;  ///< the duplicate went to a replica device
    /// Set when a replica-served hedge wins: its latency reflects the OTHER
    /// device and must not enter this scheduler's demand-p99 population.
    bool suppress_latency_sample = false;
    std::shared_ptr<BufferArena::Buffer> buf;
    /// The hedge's own bounce buffer: the original device read may still
    /// land in `buf` (the device memcpy targets it at dispatch), so the
    /// duplicate needs separate backing.
    std::shared_ptr<BufferArena::Buffer> hedge_buf;
    std::vector<Completion> subscribers;
  };

  /// Scheduling rights of one lane — the priority-lane table rows (demand
  /// is the implicit full-rights row and needs no entry).
  struct LanePolicy {
    Bytes max_inflight_bytes = 0;  ///< pending + in-flight budget
    SimDuration drain_delay;       ///< self-drain timer period
    bool droppable = false;        ///< over budget: drop (else park)
    bool drains_despite_demand = false;  ///< timer fires under demand pressure
  };

  /// Queued state of one low-priority lane.
  struct Lane {
    std::deque<PendingRead> pending;  ///< SQEs waiting for doorbell room (FIFO)
    std::deque<ReadRequest> parked;   ///< over-budget runs awaiting admission
    Bytes pending_bytes = 0;
    Bytes inflight_bytes = 0;
    bool drain_armed = false;
  };

  static constexpr size_t kBackgroundLane = 0;
  static constexpr size_t kPrefetchLane = 1;
  static constexpr size_t kNumLanes = 2;
  [[nodiscard]] static size_t LaneIndex(Kind kind) {
    return static_cast<size_t>(kind) - 1;
  }

  /// Memory backstop on a lane's SQE count (the byte budget is the real
  /// admission control; this only bounds a degenerate many-tiny-spans lane).
  static constexpr size_t kMaxLaneSqes = 256;

  [[nodiscard]] LanePolicy Policy(size_t lane) const;

  /// Whether [begin, end) (blocks [first_block, last_block]) can ride on
  /// pending read `p`: fully covered by what `p` will pull across the bus
  /// (`*covered` = true), or fusable under the cap/gap merge rules.
  [[nodiscard]] bool Compatible(const PendingRead& p, Bytes begin, Bytes end,
                                uint64_t first_block, uint64_t last_block,
                                bool sub_block, bool* covered) const;
  [[nodiscard]] Admission EnqueueDemand(ReadRequest& req);
  [[nodiscard]] Admission EnqueueLane(ReadRequest& req, size_t lane);
  /// Appends `req` to `lane` as a new SQE, charging its lane budget.
  Admission AdmitToLane(ReadRequest& req, size_t lane, Bytes bus);
  [[nodiscard]] bool TryAbsorbIntoPending(ReadRequest& req, Admission* admission);
  [[nodiscard]] bool TryJoinInFlight(ReadRequest& req);
  /// Demand-side probe of a low-priority lane: a compatible pending SQE is
  /// moved into the demand batch (promotion) and the run rides it.
  [[nodiscard]] bool TryPromoteLane(ReadRequest& req, size_t lane, Admission* admission);
  /// After pending_[i] grew, fuses any other pending reads it now covers
  /// or abuts, so one block never crosses the bus twice in one flush.
  void FuseOverlappingPending(size_t i);
  /// Size-trigger / deadline arming after the demand batch grew.
  void MaybeFlushOrArm();
  void ArmFlush();
  void ArmLaneDrain(size_t lane);
  /// Re-admits parked background runs that now fit the lane budget.
  void DrainParked(size_t lane);
  void CompleteRead(const std::shared_ptr<InFlightRead>& read, Status status);
  /// Deadline expiry: if `read` is still in flight, deliver
  /// kDeadlineExceeded to every subscriber exactly once and release its
  /// budget. Its buffer stays alive for the (possibly still coming) device
  /// memcpy; the late completion frees it.
  void ExpireRead(const std::shared_ptr<InFlightRead>& read);
  /// Hedge trigger: if `read` is still in flight and not yet hedged,
  /// submit a duplicate read into a fresh buffer.
  void MaybeHedge(const std::shared_ptr<InFlightRead>& read);
  void CompleteHedge(const std::shared_ptr<InFlightRead>& read, Status status);
  /// Arms the per-read deadline and (for demand reads, once the latency
  /// population suffices) the adaptive hedge timer. Called at flush.
  void ArmReadResponses(const std::shared_ptr<InFlightRead>& read);
  /// Removes `read` from in_flight_, delivers (status, data, base) to every
  /// subscriber exactly once, releases its budget, and re-admits parked
  /// background work. Shared tail of genuine completion / expiry / hedge win.
  void SettleRead(const std::shared_ptr<InFlightRead>& read, const Status& status,
                  const uint8_t* data);
  [[nodiscard]] Bytes BusOf(const PendingRead& p) const;
  void RecordJoin(const ReadRequest& req, Kind owner_kind, uint32_t owner_tenant);
  TenantIoShare& Share(uint32_t tenant);

  IoEngine* engine_;
  BufferArena* arena_;
  EventLoop* loop_;
  BatchSchedulerConfig config_;

  std::vector<PendingRead> pending_;  ///< demand batch (full flush rights)
  Lane lanes_[kNumLanes];
  std::vector<std::shared_ptr<InFlightRead>> in_flight_;
  /// Invalidates armed flush timers when the batch they were armed for has
  /// already been flushed by the size trigger.
  uint64_t flush_generation_ = 0;
  bool flush_armed_ = false;

  std::vector<TenantIoShare> tenant_shares_;

  StatsRegistry stats_;
  Counter* enqueued_ = nullptr;
  Counter* device_reads_ = nullptr;
  Counter* cross_request_merges_ = nullptr;
  Counter* singleflight_hits_ = nullptr;
  Counter* singleflight_bytes_saved_ = nullptr;
  Counter* flushes_ = nullptr;
  Counter* flush_deadline_ = nullptr;
  Counter* flush_size_ = nullptr;
  Counter* flush_prefetch_ = nullptr;
  Counter* flush_background_ = nullptr;
  Counter* prefetch_enqueued_ = nullptr;
  Counter* prefetch_reads_ = nullptr;
  Counter* prefetch_dropped_ = nullptr;
  Counter* prefetch_promoted_ = nullptr;
  Counter* prefetch_singleflight_ = nullptr;
  Counter* background_enqueued_ = nullptr;
  Counter* background_reads_ = nullptr;
  Counter* background_parked_ = nullptr;
  Counter* background_promoted_ = nullptr;
  Counter* background_singleflight_ = nullptr;
  Counter* cross_tenant_hits_ = nullptr;
  Counter* deadline_expired_ = nullptr;
  Counter* hedges_issued_ = nullptr;
  Counter* hedges_won_ = nullptr;
  Counter* replica_hedges_ = nullptr;
  Counter* replica_hedge_wins_ = nullptr;

  std::function<std::optional<ReplicaPeer>(Bytes, Bytes)> replica_peer_fn_;

  /// Observed demand-read completion latency (doorbell -> delivery), the
  /// population behind the adaptive hedge threshold.
  Histogram demand_latency_;

  // ---- Observability (src/obs); all null when off ----
  WindowedCounter* obs_sqes_ = nullptr;         ///< SQEs issued, all lanes
  WindowedCounter* obs_singleflight_ = nullptr; ///< demand runs served by sharing
  WindowedCounter* obs_merges_ = nullptr;
  WindowedCounter* obs_hedges_ = nullptr;
  WindowedCounter* obs_expired_ = nullptr;
  WindowedCounter* obs_pf_dropped_ = nullptr;
  WindowedCounter* obs_bg_parked_ = nullptr;
  WindowedGauge* obs_inflight_ = nullptr;
  WindowedHistogram* obs_read_lat_ = nullptr;   ///< doorbell -> settle, demand
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
