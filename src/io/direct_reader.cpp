#include "io/direct_reader.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sdm {

DirectIoReader::DirectIoReader(IoEngine* engine, DirectReaderConfig config,
                               BufferArena* arena)
    : engine_(engine), config_(config), arena_(arena) {
  assert(engine != nullptr);
  fm_bytes_ = stats_.GetCounter("fm_bytes");
  extra_copies_ = stats_.GetCounter("extra_copies");
  reads_ = stats_.GetCounter("reads");
  retries_ = stats_.GetCounter("retries");
}

bool DirectIoReader::sub_block() const {
  return config_.sub_block && engine_->device()->spec().supports_sub_block;
}

void DirectIoReader::ReadRow(Bytes offset, std::span<uint8_t> dest, Callback cb) {
  reads_->Add(1);
  Attempt(offset, dest, config_.max_retries, SimDuration(0), std::move(cb));
}

void DirectIoReader::Attempt(Bytes offset, std::span<uint8_t> dest, int attempts_left,
                             SimDuration accumulated, Callback cb) {
  const Bytes length = dest.size();
  const bool sgl = sub_block();
  const Bytes bus = NvmeDevice::BusBytes(offset, length, sgl);

  // Bounce buffer sized for the DMA target; owned by the completion closure
  // (shared_ptr because std::function requires copyable targets). With an
  // arena attached the buffer is recycled instead of freed.
  auto bounce = arena_ != nullptr ? arena_->Acquire(bus)
                                  : std::make_shared<std::vector<uint8_t>>(bus);
  const std::span<uint8_t> bounce_span(bounce->data(), bounce->size());

  // Offset of the useful bytes within the bounce buffer.
  const Bytes skew = sgl ? offset % kDwordBytes : offset % kBlockSize;

  engine_->SubmitRead(
      offset, length, sgl, bounce_span,
      [this, offset, dest, skew, sgl, attempts_left, accumulated, cb = std::move(cb),
       bounce = std::move(bounce)](Status status, SimDuration latency) mutable {
        if (!status.ok()) {
          // Retry transient (device-side) errors; invalid requests are not
          // retryable and surface immediately.
          if (IsTransientError(status.code()) && attempts_left > 0) {
            retries_->Add(1);
            const int attempt_index = config_.max_retries - attempts_left;
            const SimDuration backoff =
                SimDuration(config_.retry_backoff_base.nanos()
                            << std::min(attempt_index, 30));
            if (backoff > SimDuration(0)) {
              // Exponential backoff rides the event loop; the wait counts
              // toward the read's reported latency.
              engine_->loop()->ScheduleAfter(
                  backoff, [this, offset, dest, attempts_left, accumulated, latency,
                            backoff, cb = std::move(cb)]() mutable {
                    Attempt(offset, dest, attempts_left - 1,
                            accumulated + latency + backoff, std::move(cb));
                  });
              return;
            }
            Attempt(offset, dest, attempts_left - 1, accumulated + latency,
                    std::move(cb));
            return;
          }
          if (cb) cb(std::move(status), accumulated + latency);
          return;
        }
        const Bytes length = dest.size();
        std::memcpy(dest.data(), bounce->data() + skew, length);

        // DMA wrote `bounce` bytes into FM; the copy reads+writes the useful
        // range again. In sub-block mode the "copy" is the single placement
        // into the destination (cache storage), already close to 1x.
        fm_bytes_->Add(bounce->size() + 2 * length);
        SimDuration total = accumulated + latency;
        if (!sgl) {
          extra_copies_->Add(1);
          total += Seconds(static_cast<double>(length) / config_.memcpy_bytes_per_sec);
        }
        if (cb) cb(Status::Ok(), total);
      });
}

}  // namespace sdm
