#include "io/throttle.h"

#include <cassert>

namespace sdm {

TableThrottle::TableThrottle(ThrottleConfig config, EventLoop* loop)
    : config_(config), loop_(loop) {}

bool TableThrottle::CanDispatch(const TableState& st) const {
  if (config_.max_outstanding_per_table > 0 &&
      st.in_flight >= config_.max_outstanding_per_table) {
    return false;
  }
  if (config_.max_concurrent_tables > 0 && st.in_flight == 0 &&
      active_tables_ >= config_.max_concurrent_tables) {
    return false;  // would need a new table slot and none is free
  }
  return true;
}

void TableThrottle::Acquire(uint32_t tenant, TableId table, Runner fn) {
  assert(fn);
  TableState& st = tables_[MakeKey(tenant, table)];
  if (CanDispatch(st)) {
    if (st.in_flight == 0) ++active_tables_;
    ++st.in_flight;
    fn();
    return;
  }
  ++deferred_;
  st.waiting.push_back(
      Waiter{loop_ != nullptr ? loop_->Now() : SimTime{}, std::move(fn)});
}

void TableThrottle::Release(uint32_t tenant, TableId table) {
  const Key key = MakeKey(tenant, table);
  auto it = tables_.find(key);
  assert(it != tables_.end());
  TableState& st = it->second;
  assert(st.in_flight > 0);
  --st.in_flight;
  if (st.in_flight == 0) {
    --active_tables_;
  }
  // First serve this table's own queue, then any table blocked on the
  // global slot limit.
  TryDispatch(key, st);
  if (config_.max_concurrent_tables > 0) {
    // Scan for other tables with queued work that can now start.
    for (auto& [id, other] : tables_) {
      if (id == key) continue;
      if (other.waiting.empty()) continue;
      TryDispatch(id, other);
    }
  }
}

void TableThrottle::TryDispatch(Key key, TableState& st) {
  while (!st.waiting.empty() && CanDispatch(st)) {
    Waiter w = std::move(st.waiting.front());
    st.waiting.pop_front();
    if (loop_ != nullptr) {
      queue_ns_[TenantOf(key)] += (loop_->Now() - w.since).nanos();
    }
    if (st.in_flight == 0) ++active_tables_;
    ++st.in_flight;
    w.fn();
  }
}

int TableThrottle::InFlight(uint32_t tenant, TableId table) const {
  const auto it = tables_.find(MakeKey(tenant, table));
  return it == tables_.end() ? 0 : it->second.in_flight;
}

size_t TableThrottle::QueuedFor(uint32_t tenant, TableId table) const {
  const auto it = tables_.find(MakeKey(tenant, table));
  return it == tables_.end() ? 0 : it->second.waiting.size();
}

SimDuration TableThrottle::QueueTime(uint32_t tenant) const {
  const auto it = queue_ns_.find(tenant);
  return it == queue_ns_.end() ? SimDuration{} : SimDuration(it->second);
}

}  // namespace sdm
