#include "io/throttle.h"

#include <cassert>

namespace sdm {

TableThrottle::TableThrottle(ThrottleConfig config) : config_(config) {}

bool TableThrottle::CanDispatch(const TableState& st) const {
  if (config_.max_outstanding_per_table > 0 &&
      st.in_flight >= config_.max_outstanding_per_table) {
    return false;
  }
  if (config_.max_concurrent_tables > 0 && st.in_flight == 0 &&
      active_tables_ >= config_.max_concurrent_tables) {
    return false;  // would need a new table slot and none is free
  }
  return true;
}

void TableThrottle::Acquire(TableId table, Runner fn) {
  assert(fn);
  TableState& st = tables_[table];
  if (CanDispatch(st)) {
    if (st.in_flight == 0) ++active_tables_;
    ++st.in_flight;
    fn();
    return;
  }
  ++deferred_;
  st.waiting.push_back(std::move(fn));
}

void TableThrottle::Release(TableId table) {
  auto it = tables_.find(table);
  assert(it != tables_.end());
  TableState& st = it->second;
  assert(st.in_flight > 0);
  --st.in_flight;
  if (st.in_flight == 0) {
    --active_tables_;
  }
  // First serve this table's own queue, then any table blocked on the
  // global slot limit.
  TryDispatch(table, st);
  if (config_.max_concurrent_tables > 0) {
    // Scan for other tables with queued work that can now start.
    for (auto& [id, other] : tables_) {
      if (id == table) continue;
      if (other.waiting.empty()) continue;
      TryDispatch(id, other);
    }
  }
}

void TableThrottle::TryDispatch(TableId table, TableState& st) {
  (void)table;
  while (!st.waiting.empty() && CanDispatch(st)) {
    Runner fn = std::move(st.waiting.front());
    st.waiting.pop_front();
    if (st.in_flight == 0) ++active_tables_;
    ++st.in_flight;
    fn();
  }
}

int TableThrottle::InFlight(TableId table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.in_flight;
}

size_t TableThrottle::QueuedFor(TableId table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.waiting.size();
}

}  // namespace sdm
