// RemoteDeviceChannel — the IO-path seam between a host shard's IoEngine
// and the device shard that owns the physical NvmeDevices in the sharded
// simulation runtime (src/common/sharded_runtime.h).
//
// In single-loop disaggregated mode the IoEngine sits device-side: the
// doorbell crosses a FabricLink and the SAME engine then talks to its local
// device. In sharded mode the engine lives on the HOST shard's loop and the
// device lives on the DEVICE shard's loop, so the engine instead ships each
// doorbell (one message per SubmitBatch, carrying all its SQEs — matching
// the 64B/SQE fabric accounting of the single-loop path) through this
// channel. The channel implementation (src/serving/sharded_cluster.cpp)
// owns the fabric timing on both directions and the cross-shard mailboxes.
//
// Completions return ON THE HOST SHARD'S LOOP with the read payload in
// message-owned storage; the engine memcpys it into the original dest span
// host-side. Payloads are copied rather than shared because the dest spans
// point into per-shard BufferArenas that other shards must never touch.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace sdm {

/// One SQE of a remote doorbell.
struct RemoteReadOp {
  Bytes offset = 0;
  Bytes length = 0;
  bool sub_block = false;
  /// Bus bytes the payload occupies coming back (NvmeDevice::BusBytes of
  /// the request) — sizes the response transfer and the payload buffer.
  Bytes payload_bytes = 0;
  /// Invoked on the SUBMITTING shard's loop once the payload has crossed
  /// back. `payload` is valid only for the duration of the call (empty on
  /// error — a failed read delivers no bytes, like the local path).
  std::function<void(Status, std::span<const uint8_t> payload)> on_complete;
};

class RemoteDeviceChannel {
 public:
  virtual ~RemoteDeviceChannel() = default;

  /// Ships one doorbell (>= 1 SQEs) to remote device `port`. The request
  /// direction carries 64 bytes per SQE in ONE transfer, exactly like the
  /// single-loop fabric path.
  virtual void SubmitDoorbell(size_t port, std::vector<RemoteReadOp> ops) = 0;
};

}  // namespace sdm
