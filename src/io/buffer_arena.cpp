#include "io/buffer_arena.h"

#include <algorithm>

namespace sdm {

BufferArena::BufferArena(size_t max_pooled_buffers)
    : max_pooled_buffers_(max_pooled_buffers),
      self_(std::make_shared<BufferArena*>(this)) {}

BufferArena::~BufferArena() { *self_ = nullptr; }

std::shared_ptr<BufferArena::Buffer> BufferArena::Acquire(Bytes bytes) {
  ++stats_.acquires;

  std::unique_ptr<Buffer> buf;
  // Best-fit over the (small, bounded) free list: smallest pooled buffer
  // whose capacity covers the request.
  size_t best = free_list_.size();
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i]->capacity() < bytes) continue;
    if (best == free_list_.size() ||
        free_list_[i]->capacity() < free_list_[best]->capacity()) {
      best = i;
    }
  }
  if (best != free_list_.size()) {
    ++stats_.reuses;
    buf = std::move(free_list_[best]);
    free_list_.erase(free_list_.begin() + static_cast<ptrdiff_t>(best));
  } else {
    ++stats_.allocations;
    buf = std::make_unique<Buffer>();
    buf->reserve(bytes);
  }
  buf->resize(bytes);

  return {buf.release(), [weak = self_](Buffer* b) {
            if (BufferArena* arena = *weak) {
              arena->Recycle(b);
            } else {
              delete b;  // arena destroyed with the IO still in flight
            }
          }};
}

void BufferArena::Recycle(Buffer* buf) {
  if (free_list_.size() >= max_pooled_buffers_) {
    ++stats_.discarded;
    delete buf;
    return;
  }
  free_list_.emplace_back(buf);
}

Bytes BufferArena::pooled_bytes() const {
  Bytes total = 0;
  for (const auto& b : free_list_) total += b->capacity();
  return total;
}

}  // namespace sdm
