// Reusable block-buffer arena for the coalesced IO path.
//
// The per-row IO path used to heap-allocate a fresh bounce buffer for every
// device read — allocation churn that a real io_uring serving stack avoids
// with registered/pooled buffers. The arena keeps a free list of previously
// used buffers and hands them out by capacity; buffers return to the pool
// automatically when the last reference to the handle drops (completion
// closures are std::function, hence copyable shared ownership).
//
// Single-threaded by design: all acquire/release happens on the EventLoop
// thread, like everything else on the IO path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace sdm {

struct BufferArenaStats {
  uint64_t acquires = 0;
  uint64_t allocations = 0;  ///< acquires that had to malloc (pool miss)
  uint64_t reuses = 0;       ///< acquires served from the free list
  uint64_t discarded = 0;    ///< returned buffers dropped (pool full)

  [[nodiscard]] double ReuseRate() const {
    return acquires == 0 ? 0.0 : static_cast<double>(reuses) / static_cast<double>(acquires);
  }
};

class BufferArena {
 public:
  /// `max_pooled_buffers` bounds the free list so a burst doesn't pin
  /// memory forever; extra returns are simply freed.
  explicit BufferArena(size_t max_pooled_buffers = 64);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;
  ~BufferArena();

  /// A pooled buffer. `size()` is the requested size; capacity may be
  /// larger (recycled from a bigger request).
  using Buffer = std::vector<uint8_t>;

  /// Returns a buffer of exactly `bytes` size, recycling a pooled one when
  /// possible. The handle is copyable; the buffer returns to the pool when
  /// the last copy is destroyed.
  [[nodiscard]] std::shared_ptr<Buffer> Acquire(Bytes bytes);

  [[nodiscard]] const BufferArenaStats& stats() const { return stats_; }
  [[nodiscard]] size_t pooled_buffers() const { return free_list_.size(); }
  [[nodiscard]] Bytes pooled_bytes() const;

 private:
  void Recycle(Buffer* buf);

  size_t max_pooled_buffers_;
  std::vector<std::unique_ptr<Buffer>> free_list_;
  BufferArenaStats stats_;
  // Deleters hold a weak reference to detect arena teardown with buffers
  // still in flight (they then free instead of recycling).
  std::shared_ptr<BufferArena*> self_;
};

}  // namespace sdm
