// DIRECT_IO row reader (paper §4.1 design choice).
//
// Reads an arbitrary [offset, length) row through the IoEngine and delivers
// exactly the useful bytes to the caller:
//  - block mode: DMA of whole 4KB block(s) into a bounce buffer, then an
//    extra memcpy of the useful range — this is the copy the sub-block path
//    eliminates, and it costs both CPU time and FM bandwidth (§4.3);
//  - sub-block mode: DWORD-rounded DMA, useful bytes copied straight out
//    (no block bounce).
//
// FM-bandwidth and CPU-copy costs are accounted so cache-organization
// experiments can show the ">2X FM BW for every X pulled from SM" effect.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "io/buffer_arena.h"
#include "io/io_engine.h"

namespace sdm {

struct DirectReaderConfig {
  /// Use the SGL bit-bucket sub-block path when the device supports it.
  bool sub_block = true;
  /// Modeled memcpy throughput for the extra copy (CPU-side).
  double memcpy_bytes_per_sec = 12e9;
  /// Transient-error retries before surfacing the failure (media errors
  /// are often recoverable on re-read; NVMe drivers retry similarly).
  int max_retries = 1;
  /// Exponential backoff between retry attempts: attempt k (0-based) waits
  /// base * 2^k before re-reading. Zero keeps the legacy immediate re-read
  /// (byte-identical to pre-backoff behavior).
  SimDuration retry_backoff_base{0};
};

class DirectIoReader {
 public:
  using Callback = std::function<void(Status, SimDuration)>;

  /// `arena` (optional) recycles bounce buffers across reads instead of
  /// heap-allocating one per IO; it must outlive the reader.
  DirectIoReader(IoEngine* engine, DirectReaderConfig config, BufferArena* arena = nullptr);

  /// Asynchronously fills `dest` (sized to the useful length) from device
  /// range [offset, offset + dest.size()). Latency includes the modeled
  /// extra-memcpy cost in block mode.
  void ReadRow(Bytes offset, std::span<uint8_t> dest, Callback cb);

  /// FM bytes moved (DMA writes + bounce copies). The block path moves
  /// > 2x the useful bytes; the sub-block path moves ~1x.
  [[nodiscard]] uint64_t fm_bytes_moved() const { return fm_bytes_->value(); }
  [[nodiscard]] uint64_t extra_copies() const { return extra_copies_->value(); }
  [[nodiscard]] uint64_t retries() const { return retries_->value(); }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] bool sub_block() const;
  [[nodiscard]] int max_retries() const { return config_.max_retries; }
  [[nodiscard]] double memcpy_bytes_per_sec() const { return config_.memcpy_bytes_per_sec; }

 private:
  void Attempt(Bytes offset, std::span<uint8_t> dest, int attempts_left,
               SimDuration accumulated, Callback cb);

  IoEngine* engine_;
  DirectReaderConfig config_;
  BufferArena* arena_;
  StatsRegistry stats_;
  Counter* fm_bytes_ = nullptr;
  Counter* extra_copies_ = nullptr;
  Counter* reads_ = nullptr;
  Counter* retries_ = nullptr;
};

}  // namespace sdm
