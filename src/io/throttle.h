// Per-table and global IO admission control (paper §4.1 Tuning API:
// "Total number of outstanding IOs per table and total number of tables
// that can be processed at given time").
//
// The throttle sits in front of an IoEngine: lookups acquire a slot for
// their table before submitting; excess work queues FIFO per table, and
// tables themselves queue for one of the global table slots.
//
// Multi-tenant scoping (src/tenant): on a shared device the same throttle
// is shared by every tenant's store, so slots are keyed by (tenant, table)
// — one tenant saturating its tables cannot consume another tenant's
// per-table budget. Single-tenant stores pass tenant 0 everywhere (the
// TableId-only overloads), which reduces to the original behavior. When
// constructed with an EventLoop the throttle also accounts, per tenant,
// the virtual time work spent queued for a slot — the queueing component
// of a tenant's IO latency, reported by TenantReport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/event_loop.h"
#include "common/stats.h"
#include "common/types.h"

namespace sdm {

struct ThrottleConfig {
  /// Max IOs in flight per (tenant, table) (<=0 means unlimited).
  int max_outstanding_per_table = 32;
  /// Max distinct (tenant, table) keys with in-flight IO at once
  /// (<=0 means unlimited).
  int max_concurrent_tables = 0;
};

class TableThrottle {
 public:
  using Runner = std::function<void()>;

  /// `loop` (optional) enables per-tenant queue-time accounting.
  explicit TableThrottle(ThrottleConfig config, EventLoop* loop = nullptr);

  /// Runs `fn` now if the (tenant, table) key has a free slot (and a table
  /// slot is free), otherwise queues it. `fn` performs the submission.
  void Acquire(uint32_t tenant, TableId table, Runner fn);
  void Acquire(TableId table, Runner fn) { Acquire(0, table, std::move(fn)); }

  /// Releases one slot for the key and dispatches queued work.
  void Release(uint32_t tenant, TableId table);
  void Release(TableId table) { Release(0, table); }

  [[nodiscard]] int InFlight(uint32_t tenant, TableId table) const;
  [[nodiscard]] int InFlight(TableId table) const { return InFlight(0, table); }
  [[nodiscard]] int ActiveTables() const { return active_tables_; }
  [[nodiscard]] uint64_t deferred() const { return deferred_; }
  [[nodiscard]] size_t QueuedFor(uint32_t tenant, TableId table) const;
  [[nodiscard]] size_t QueuedFor(TableId table) const { return QueuedFor(0, table); }

  /// Cumulative virtual time `tenant`'s work spent waiting for a slot
  /// (zero unless constructed with an EventLoop).
  [[nodiscard]] SimDuration QueueTime(uint32_t tenant) const;

 private:
  /// (tenant, table) composite — tenants are dense small ints, table ids
  /// are dense per store, so the pair packs into one ordered key.
  using Key = uint64_t;
  [[nodiscard]] static Key MakeKey(uint32_t tenant, TableId table) {
    return (static_cast<Key>(tenant) << 32) | Raw(table);
  }
  [[nodiscard]] static uint32_t TenantOf(Key key) {
    return static_cast<uint32_t>(key >> 32);
  }

  struct Waiter {
    SimTime since;
    Runner fn;
  };
  struct TableState {
    int in_flight = 0;
    std::deque<Waiter> waiting;
  };

  [[nodiscard]] bool CanDispatch(const TableState& st) const;
  void TryDispatch(Key key, TableState& st);

  ThrottleConfig config_;
  EventLoop* loop_;
  std::map<Key, TableState> tables_;
  int active_tables_ = 0;
  uint64_t deferred_ = 0;
  std::map<uint32_t, int64_t> queue_ns_;  // per-tenant waiting time
};

}  // namespace sdm
