// Per-table and global IO admission control (paper §4.1 Tuning API:
// "Total number of outstanding IOs per table and total number of tables
// that can be processed at given time").
//
// The throttle sits in front of an IoEngine: lookups acquire a slot for
// their table before submitting; excess work queues FIFO per table, and
// tables themselves queue for one of the global table slots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/stats.h"
#include "common/types.h"

namespace sdm {

struct ThrottleConfig {
  /// Max IOs in flight per table (<=0 means unlimited).
  int max_outstanding_per_table = 32;
  /// Max distinct tables with in-flight IO at once (<=0 means unlimited).
  int max_concurrent_tables = 0;
};

class TableThrottle {
 public:
  using Runner = std::function<void()>;

  explicit TableThrottle(ThrottleConfig config);

  /// Runs `fn` now if the table has a free slot (and a table slot is free),
  /// otherwise queues it. `fn` performs the actual submission.
  void Acquire(TableId table, Runner fn);

  /// Releases one slot for `table` and dispatches queued work.
  void Release(TableId table);

  [[nodiscard]] int InFlight(TableId table) const;
  [[nodiscard]] int ActiveTables() const { return active_tables_; }
  [[nodiscard]] uint64_t deferred() const { return deferred_; }
  [[nodiscard]] size_t QueuedFor(TableId table) const;

 private:
  struct TableState {
    int in_flight = 0;
    std::deque<Runner> waiting;
  };

  [[nodiscard]] bool CanDispatch(const TableState& st) const;
  void TryDispatch(TableId table, TableState& st);

  ThrottleConfig config_;
  std::map<TableId, TableState> tables_;
  int active_tables_ = 0;
  uint64_t deferred_ = 0;
  // Tables with queued work blocked only on the global table-slot limit.
  std::deque<TableId> tables_waiting_for_slot_;
};

}  // namespace sdm
