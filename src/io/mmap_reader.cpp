#include "io/mmap_reader.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

namespace sdm {

MmapReader::MmapReader(IoEngine* engine, MmapReaderConfig config)
    : engine_(engine), config_(config) {
  assert(engine != nullptr);
  faults_ = stats_.GetCounter("page_faults");
  hits_ = stats_.GetCounter("page_hits");
  evictions_ = stats_.GetCounter("evictions");
}

void MmapReader::Read(Bytes offset, std::span<uint8_t> dest, Callback cb) {
  if (dest.empty()) {
    if (cb) cb(Status::Ok(), SimDuration(0));
    return;
  }
  EventLoop* loop = engine_->loop();
  const SimTime started_at = loop->Now();
  const PageId first = offset / kBlockSize;
  const PageId last = (offset + dest.size() - 1) / kBlockSize;

  // Copies the requested range out of the now-resident pages and completes.
  auto finish = [this, loop, offset, dest, started_at, cb](Status status) {
    if (!status.ok()) {
      if (cb) cb(status, loop->Now() - started_at);
      return;
    }
    const PageId first_p = offset / kBlockSize;
    const PageId last_p = (offset + dest.size() - 1) / kBlockSize;
    for (PageId p = first_p; p <= last_p; ++p) {
      auto it = pages_.find(p);
      if (it == pages_.end() || !it->second.ready) {
        // Page was evicted between fault completion and copy-out; a real
        // kernel would re-fault. Rare under sane capacities; report it.
        if (cb) cb(UnavailableError("page evicted before copy-out"), loop->Now() - started_at);
        return;
      }
      const Bytes page_base = p * kBlockSize;
      const Bytes lo = std::max<Bytes>(offset, page_base);
      const Bytes hi = std::min<Bytes>(offset + dest.size(), page_base + kBlockSize);
      std::memcpy(dest.data() + (lo - offset), it->second.data.data() + (lo - page_base),
                  hi - lo);
      // LRU bump.
      lru_.erase(it->second.lru_it);
      lru_.push_front(p);
      it->second.lru_it = lru_.begin();
    }
    if (cb) cb(Status::Ok(), loop->Now() - started_at);
  };

  struct Join {
    int remaining = 0;
  };
  auto join = std::make_shared<Join>();

  // Start faults for absent pages; piggyback on in-flight ones.
  for (PageId p = first; p <= last; ++p) {
    auto it = pages_.find(p);
    if (it != pages_.end() && it->second.ready) {
      hits_->Add(1);
      continue;
    }
    ++join->remaining;
    auto on_page_ready = [join, finish] {
      if (--join->remaining == 0) finish(Status::Ok());
    };
    if (it != pages_.end()) {
      it->second.waiters.push_back(std::move(on_page_ready));
      continue;
    }
    Page page;
    page.data.assign(kBlockSize, 0);
    lru_.push_front(p);
    page.lru_it = lru_.begin();
    page.waiters.push_back(std::move(on_page_ready));
    pages_.emplace(p, std::move(page));
    FaultPage(p);
  }

  if (join->remaining == 0) finish(Status::Ok());
}

void MmapReader::FaultPage(PageId page) {
  faults_->Add(1);
  auto it = pages_.find(page);
  assert(it != pages_.end());
  const Bytes offset = page * kBlockSize;
  const std::span<uint8_t> dest(it->second.data.data(), kBlockSize);
  engine_->SubmitRead(offset, kBlockSize, /*sub_block=*/false, dest,
                      [this, page](Status status, SimDuration /*latency*/) {
                        auto it2 = pages_.find(page);
                        if (it2 == pages_.end()) return;  // evicted mid-flight
                        it2->second.ready = status.ok();
                        auto waiters = std::move(it2->second.waiters);
                        it2->second.waiters.clear();
                        for (auto& w : waiters) w();
                        EvictIfNeeded();
                      });
}

void MmapReader::EvictIfNeeded() {
  const size_t max_pages =
      std::max<size_t>(1, config_.page_cache_capacity / kBlockSize);
  while (pages_.size() > max_pages) {
    // Evict the least-recently-used *ready* page (skip in-flight faults).
    bool evicted = false;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      auto it = pages_.find(*rit);
      assert(it != pages_.end());
      if (!it->second.ready || !it->second.waiters.empty()) continue;
      lru_.erase(std::next(rit).base());
      pages_.erase(it);
      evictions_->Add(1);
      evicted = true;
      break;
    }
    if (!evicted) break;  // everything is mid-fault; try again later
  }
}

}  // namespace sdm
