// Asynchronous IO engine modeled on io_uring (paper §4.1).
//
// Submission/completion queue semantics over one NvmeDevice:
//  - bounded device queue depth with FIFO spill queue (the paper's "limit
//    maximum outstanding requests to the SSD" tuning knob for Nand);
//  - per-IO CPU cost accounting, with *interrupt* vs *polling* completion
//    modes — polling removes IRQ overhead and delivers ~1.5x IOPS/core
//    (paper Appendix A.1);
//  - sub-block (SGL bit-bucket) or block read per request;
//  - an optional fabric hop (src/fabric) in front of every submission for
//    disaggregated, fabric-attached devices: the doorbell crosses the link
//    before SQEs reach the device queue, and each completion's payload
//    crosses back before its callback runs. Instant links (zero latency,
//    unlimited bandwidth) deliver synchronously, keeping the local path
//    byte-identical.
//
// CPU time is tracked as virtual nanoseconds of a single submission thread,
// which is how the paper reports IOPS/core.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "common/event_loop.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "device/nvme_device.h"
#include "obs/observability.h"

namespace sdm {

class FabricLink;
class RemoteDeviceChannel;

enum class CompletionMode : uint8_t {
  kInterrupt,  ///< IRQ per completion: extra latency + CPU per IO.
  kPolling,    ///< Busy-poll the CQ: lower CPU/IO, no IRQ delay.
};

[[nodiscard]] inline const char* ToString(CompletionMode m) {
  return m == CompletionMode::kInterrupt ? "interrupt" : "polling";
}

struct IoEngineConfig {
  CompletionMode completion_mode = CompletionMode::kInterrupt;

  /// Max IOs outstanding at the device. Excess submissions queue in the
  /// engine. Smaller values smooth Nand latency under bursts (§4.1).
  int queue_depth = 256;

  /// CPU cost to build + submit one SQE (io_uring syscall amortized).
  /// For batched submission this is charged once per ring doorbell.
  SimDuration cpu_submit_cost = Nanos(800);

  /// CPU cost of each additional SQE in a batched submission: building the
  /// SQE itself is cheap once the io_uring_enter syscall is shared.
  SimDuration cpu_submit_cost_batch_sqe = Nanos(150);

  /// CPU cost to reap one CQE in interrupt mode (IRQ + context switch share).
  SimDuration cpu_complete_cost_interrupt = Nanos(1600);

  /// CPU cost to reap one CQE when busy-polling.
  SimDuration cpu_complete_cost_polling = Nanos(800);

  /// Added completion-delivery latency in interrupt mode.
  SimDuration interrupt_delay = Micros(2);
};

class IoEngine {
 public:
  using Callback = std::function<void(Status, SimDuration)>;

  IoEngine(NvmeDevice* device, EventLoop* loop, IoEngineConfig config);

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Submits an async read of [offset, offset+length). `dest` must follow
  /// NvmeDevice::ReadRequest sizing (BusBytes). The callback receives the
  /// end-to-end latency: engine queueing + device + completion delivery.
  void SubmitRead(Bytes offset, Bytes length, bool sub_block, std::span<uint8_t> dest,
                  Callback cb);

  /// One read in a batched submission. `merged_reads` / `bytes_saved`
  /// describe how many logical (per-row) reads this op coalesces and how
  /// many bus bytes that saved versus issuing them individually — the
  /// engine only aggregates them into its counters.
  struct ReadOp {
    Bytes offset = 0;
    Bytes length = 0;
    bool sub_block = false;
    std::span<uint8_t> dest;
    Callback cb;
    uint32_t merged_reads = 1;
    Bytes bytes_saved = 0;
    /// Both endpoints of this op live on the device side (re-replication
    /// copy chunks): when the engine sits behind a fabric link, the op
    /// dispatches locally instead of paying — and being counted as — host
    /// fabric traffic.
    bool service_local = false;
  };

  /// Submits `ops` as one ring doorbell: the first SQE pays the full
  /// `cpu_submit_cost`, each further SQE only `cpu_submit_cost_batch_sqe`
  /// (amortized io_uring_enter). Ops beyond `queue_depth` spill to the
  /// engine's FIFO queue exactly like single submissions.
  void SubmitBatch(std::span<ReadOp> ops);

  /// Attaches (or detaches, with nullptr) the fabric hop of a disaggregated
  /// device: submissions traverse `link`'s request direction before entering
  /// the device queue, completion payloads its response direction before the
  /// callback. The link must outlive the engine. Callback latency covers
  /// both hops.
  void set_fabric_link(FabricLink* link) { fabric_ = link; }
  [[nodiscard]] FabricLink* fabric_link() const { return fabric_; }

  /// Sharded-runtime mode (src/common/sharded_runtime.h): submissions ship
  /// through `channel` to remote device `port` on another shard instead of
  /// touching `device()` — which then serves only as the SPEC source (the
  /// immutable DeviceSpec readers consult; never submitted to from this
  /// thread). The engine keeps its submit/complete CPU and counter
  /// accounting; queue-depth spill moves to the device shard's endpoint,
  /// where — like the single-loop shared engine — it bounds outstanding IOs
  /// across every host. Mutually exclusive with a fabric link: the channel
  /// implementation owns the fabric timing of both directions.
  void set_remote_channel(RemoteDeviceChannel* channel, size_t port) {
    remote_ = channel;
    remote_port_ = port;
  }
  [[nodiscard]] RemoteDeviceChannel* remote_channel() const { return remote_; }

  [[nodiscard]] int outstanding() const { return outstanding_; }
  [[nodiscard]] size_t queued() const { return pending_.size(); }
  [[nodiscard]] const IoEngineConfig& config() const { return config_; }
  [[nodiscard]] NvmeDevice* device() { return device_; }
  [[nodiscard]] EventLoop* loop() { return loop_; }

  /// Total CPU time charged to the IO thread.
  [[nodiscard]] SimDuration cpu_time() const { return SimDuration(cpu_ns_->value()); }

  /// Completed IOs per CPU-second of IO-thread work (paper A.1 metric).
  [[nodiscard]] double IopsPerCore() const;

  /// End-to-end (submit -> callback) latency distribution.
  [[nodiscard]] const Histogram& latency() const { return latency_; }

  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

  /// Observability (src/obs): windowed metrics under `<name>io/` and one
  /// device-service trace track. Null obs keeps every handle null.
  void set_obs(Observability* obs, const std::string& name);

 private:
  struct Pending {
    Bytes offset;
    Bytes length;
    bool sub_block;
    std::span<uint8_t> dest;
    Callback cb;
    SimTime enqueued_at;
  };

  void Dispatch(Pending p);
  void OnDeviceComplete(SimTime submitted_at, Status status, Callback cb);
  /// Remote-mode submission: one doorbell for `ops` through the channel
  /// (`batched` selects SubmitBatchLocal vs SubmitReadLocal accounting).
  void SubmitRemote(std::span<ReadOp> ops, bool batched);
  /// Remote-mode completion, on this engine's loop: copies the payload into
  /// the original dest and runs completion accounting + the callback.
  void OnRemoteComplete(SimTime accepted_at, std::span<uint8_t> dest, Status status,
                        std::span<const uint8_t> payload, Callback cb);
  void SubmitReadLocal(Bytes offset, Bytes length, bool sub_block,
                       std::span<uint8_t> dest, Callback cb);
  void SubmitBatchLocal(std::span<ReadOp> ops);
  /// Wraps `cb` so the read payload traverses the fabric's response
  /// direction before delivery; the reported latency restarts from
  /// `accepted_at` (submission entry) so it covers both hops.
  [[nodiscard]] Callback WrapFabricCompletion(Bytes payload, SimTime accepted_at,
                                              Callback cb);

  NvmeDevice* device_;
  EventLoop* loop_;
  IoEngineConfig config_;
  FabricLink* fabric_ = nullptr;
  RemoteDeviceChannel* remote_ = nullptr;
  size_t remote_port_ = 0;
  int outstanding_ = 0;
  std::deque<Pending> pending_;

  StatsRegistry stats_;
  Histogram latency_;
  Counter* submitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* cpu_ns_ = nullptr;
  Counter* spilled_ = nullptr;
  Counter* batches_ = nullptr;
  Counter* batch_sqes_ = nullptr;
  Counter* coalesced_reads_ = nullptr;
  Counter* bytes_saved_ = nullptr;

  // ---- Observability (src/obs); all null when off ----
  WindowedCounter* obs_submitted_ = nullptr;
  WindowedCounter* obs_errors_ = nullptr;
  WindowedCounter* obs_spilled_ = nullptr;
  WindowedHistogram* obs_lat_ = nullptr;  ///< submit -> delivery, end to end
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
};

}  // namespace sdm
