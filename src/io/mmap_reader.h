// mmap-style page-cache reader — the road not taken (paper §4.1).
//
// Models reading SM through mmap: every miss faults a whole 4KB page into a
// page cache that competes for FM space, and the useful sub-range is copied
// out on access. With 128B rows and little spatial locality this wastes
// ~32x of FM per cached row and adds ~3x latency versus DIRECT_IO with an
// application row cache — the comparison bench_mmap_vs_directio reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "io/io_engine.h"

namespace sdm {

struct MmapReaderConfig {
  /// FM budget for resident pages.
  Bytes page_cache_capacity = 64 * kMiB;
};

class MmapReader {
 public:
  using Callback = std::function<void(Status, SimDuration)>;

  MmapReader(IoEngine* engine, MmapReaderConfig config);

  /// Reads [offset, offset + dest.size()): faults any non-resident pages
  /// (block IO each), then copies the range out of the page cache.
  void Read(Bytes offset, std::span<uint8_t> dest, Callback cb);

  [[nodiscard]] uint64_t page_faults() const { return faults_->value(); }
  [[nodiscard]] uint64_t page_hits() const { return hits_->value(); }
  [[nodiscard]] size_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }

 private:
  using PageId = uint64_t;

  struct Page {
    std::vector<uint8_t> data;
    std::list<PageId>::iterator lru_it;
    bool ready = false;  // false while the fault IO is outstanding
    std::vector<std::function<void()>> waiters;
  };

  void FaultPage(PageId page);
  void EvictIfNeeded();

  IoEngine* engine_;
  MmapReaderConfig config_;
  std::unordered_map<PageId, Page> pages_;
  std::list<PageId> lru_;  // front = most recent

  StatsRegistry stats_;
  Counter* faults_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* evictions_ = nullptr;
};

}  // namespace sdm
