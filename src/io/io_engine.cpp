#include "io/io_engine.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "fabric/fabric_link.h"
#include "io/remote_channel.h"

namespace sdm {

namespace {

/// Fabric payload of one SQE crossing in a doorbell message (a 64B NVMe
/// submission queue entry; NVMe-oF capsules carry exactly these).
constexpr Bytes kFabricSqeBytes = 64;

}  // namespace

IoEngine::IoEngine(NvmeDevice* device, EventLoop* loop, IoEngineConfig config)
    : device_(device), loop_(loop), config_(config) {
  assert(device != nullptr);
  assert(loop != nullptr);
  assert(config.queue_depth >= 1);
  submitted_ = stats_.GetCounter("submitted");
  completed_ = stats_.GetCounter("completed");
  errors_ = stats_.GetCounter("errors");
  cpu_ns_ = stats_.GetCounter("cpu_ns");
  spilled_ = stats_.GetCounter("spilled");
  batches_ = stats_.GetCounter("batches");
  batch_sqes_ = stats_.GetCounter("batch_sqes");
  coalesced_reads_ = stats_.GetCounter("coalesced_reads");
  bytes_saved_ = stats_.GetCounter("bytes_saved");
}

void IoEngine::set_obs(Observability* obs, const std::string& name) {
  obs_submitted_ = ObsCounter(obs, name + "io/submitted");
  obs_errors_ = ObsCounter(obs, name + "io/errors");
  obs_spilled_ = ObsCounter(obs, name + "io/spilled");
  obs_lat_ = ObsHist(obs, name + "io/latency_ns");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = name;
    if (!process.empty() && process.back() == '/') process.pop_back();
    obs_track_ = obs_spans_->Track(process, "io");
  }
}

void IoEngine::SubmitRead(Bytes offset, Bytes length, bool sub_block,
                          std::span<uint8_t> dest, Callback cb) {
  if (remote_ != nullptr) {
    ReadOp op;
    op.offset = offset;
    op.length = length;
    op.sub_block = sub_block;
    op.dest = dest;
    op.cb = std::move(cb);
    SubmitRemote(std::span<ReadOp>(&op, 1), /*batched=*/false);
    return;
  }
  if (fabric_ != nullptr) {
    // The SQE crosses to the device; the read payload crosses back.
    cb = WrapFabricCompletion(NvmeDevice::BusBytes(offset, length, sub_block),
                              loop_->Now(), std::move(cb));
    fabric_->Request(kFabricSqeBytes,
                     [this, offset, length, sub_block, dest, cb = std::move(cb)]() mutable {
                       SubmitReadLocal(offset, length, sub_block, dest, std::move(cb));
                     });
    return;
  }
  SubmitReadLocal(offset, length, sub_block, dest, std::move(cb));
}

void IoEngine::SubmitReadLocal(Bytes offset, Bytes length, bool sub_block,
                               std::span<uint8_t> dest, Callback cb) {
  submitted_->Add(1);
  if (obs_submitted_ != nullptr) obs_submitted_->Add(loop_->Now());
  cpu_ns_->Add(static_cast<uint64_t>(config_.cpu_submit_cost.nanos()));
  Pending p{offset, length, sub_block, dest, std::move(cb), loop_->Now()};
  if (outstanding_ >= config_.queue_depth) {
    spilled_->Add(1);
    if (obs_spilled_ != nullptr) obs_spilled_->Add(loop_->Now());
    pending_.push_back(std::move(p));
    return;
  }
  Dispatch(std::move(p));
}

void IoEngine::SubmitBatch(std::span<ReadOp> ops) {
  if (ops.empty()) return;
  if (remote_ != nullptr) {
    SubmitRemote(ops, /*batched=*/true);
    return;
  }
  if (fabric_ != nullptr) {
    // One doorbell message carries every SQE of the batch across the
    // request direction; each completion's payload crosses back on its own.
    // Service-local ops (both endpoints on the device side, e.g.
    // re-replication copy chunks) dispatch directly: only serving-path IO
    // traverses — and is billed to — the host fabric.
    const SimTime accepted_at = loop_->Now();
    auto batch = std::make_shared<std::vector<ReadOp>>();
    batch->reserve(ops.size());
    std::vector<ReadOp> local;
    for (ReadOp& op : ops) {
      if (op.service_local) {
        local.push_back(std::move(op));
        continue;
      }
      op.cb = WrapFabricCompletion(
          NvmeDevice::BusBytes(op.offset, op.length, op.sub_block), accepted_at,
          std::move(op.cb));
      batch->push_back(std::move(op));
    }
    if (!local.empty()) SubmitBatchLocal(std::span<ReadOp>(local));
    if (!batch->empty()) {
      fabric_->Request(kFabricSqeBytes * batch->size(),
                       [this, batch] { SubmitBatchLocal(std::span<ReadOp>(*batch)); });
    }
    return;
  }
  SubmitBatchLocal(ops);
}

IoEngine::Callback IoEngine::WrapFabricCompletion(Bytes payload, SimTime accepted_at,
                                                  Callback cb) {
  // Capture the link, not the member: a read submitted over the fabric must
  // return over the same fabric even if the engine is detached mid-flight.
  FabricLink* link = fabric_;
  return [this, link, payload, accepted_at, cb = std::move(cb)](
             Status status, SimDuration /*local*/) mutable {
    link->Response(payload, [this, accepted_at, status = std::move(status),
                             cb = std::move(cb)] {
      cb(status, loop_->Now() - accepted_at);
    });
  };
}

void IoEngine::SubmitBatchLocal(std::span<ReadOp> ops) {
  batches_->Add(1);
  batch_sqes_->Add(ops.size());
  submitted_->Add(ops.size());
  if (obs_submitted_ != nullptr) obs_submitted_->Add(loop_->Now(), ops.size());
  // One doorbell for the whole batch; SQEs after the first are nearly free.
  cpu_ns_->Add(static_cast<uint64_t>(
      config_.cpu_submit_cost.nanos() +
      config_.cpu_submit_cost_batch_sqe.nanos() * static_cast<int64_t>(ops.size() - 1)));
  for (ReadOp& op : ops) {
    if (op.merged_reads > 1) coalesced_reads_->Add(op.merged_reads - 1);
    bytes_saved_->Add(op.bytes_saved);
    Pending p{op.offset, op.length, op.sub_block, op.dest, std::move(op.cb),
              loop_->Now()};
    if (outstanding_ >= config_.queue_depth) {
      spilled_->Add(1);
      if (obs_spilled_ != nullptr) obs_spilled_->Add(loop_->Now());
      pending_.push_back(std::move(p));
      continue;
    }
    Dispatch(std::move(p));
  }
}

void IoEngine::SubmitRemote(std::span<ReadOp> ops, bool batched) {
  // Host-side half of the single-loop SubmitBatchLocal accounting: the
  // doorbell is built and rung HERE (this shard's IO thread pays the submit
  // CPU), while queue-depth spill happens at the device shard's endpoint,
  // which sees every host's traffic like the shared engine used to. A
  // non-batched doorbell from SubmitRead keeps SubmitReadLocal's accounting
  // (no batch counters), like the fabric path does.
  if (batched) {
    batches_->Add(1);
    batch_sqes_->Add(ops.size());
  }
  submitted_->Add(ops.size());
  if (obs_submitted_ != nullptr) obs_submitted_->Add(loop_->Now(), ops.size());
  cpu_ns_->Add(static_cast<uint64_t>(
      config_.cpu_submit_cost.nanos() +
      config_.cpu_submit_cost_batch_sqe.nanos() * static_cast<int64_t>(ops.size() - 1)));
  const SimTime accepted_at = loop_->Now();
  std::vector<RemoteReadOp> remote_ops;
  remote_ops.reserve(ops.size());
  for (ReadOp& op : ops) {
    if (op.merged_reads > 1) coalesced_reads_->Add(op.merged_reads - 1);
    bytes_saved_->Add(op.bytes_saved);
    ++outstanding_;
    RemoteReadOp r;
    r.offset = op.offset;
    r.length = op.length;
    r.sub_block = op.sub_block;
    r.payload_bytes = NvmeDevice::BusBytes(op.offset, op.length, op.sub_block);
    r.on_complete = [this, accepted_at, dest = op.dest, cb = std::move(op.cb)](
                        Status status, std::span<const uint8_t> payload) mutable {
      OnRemoteComplete(accepted_at, dest, std::move(status), payload, std::move(cb));
    };
    remote_ops.push_back(std::move(r));
  }
  remote_->SubmitDoorbell(remote_port_, std::move(remote_ops));
}

void IoEngine::OnRemoteComplete(SimTime accepted_at, std::span<uint8_t> dest,
                                Status status, std::span<const uint8_t> payload,
                                Callback cb) {
  --outstanding_;
  assert(outstanding_ >= 0);
  const bool interrupt = config_.completion_mode == CompletionMode::kInterrupt;
  cpu_ns_->Add(static_cast<uint64_t>(
      (interrupt ? config_.cpu_complete_cost_interrupt : config_.cpu_complete_cost_polling)
          .nanos()));
  if (!status.ok()) {
    errors_->Add(1);
    if (obs_errors_ != nullptr) obs_errors_->Add(loop_->Now());
  }
  completed_->Add(1);
  if (status.ok() && !payload.empty()) {
    // The payload crossed shards in message-owned storage; land it in the
    // caller's buffer (per-shard arena) now that we are on the owning loop.
    assert(payload.size() == dest.size());
    std::copy(payload.begin(), payload.end(), dest.begin());
  }
  const SimDuration e2e = loop_->Now() - accepted_at;
  latency_.Record(e2e);
  if (obs_lat_ != nullptr) obs_lat_->Record(loop_->Now(), e2e);
  if (obs_spans_ != nullptr) {
    obs_spans_->Span(obs_track_, "io.read", accepted_at, loop_->Now());
  }
  if (cb) cb(std::move(status), e2e);
}

void IoEngine::Dispatch(Pending p) {
  ++outstanding_;
  const SimTime submitted_at = p.enqueued_at;
  NvmeDevice::ReadRequest req;
  req.offset = p.offset;
  req.length = p.length;
  req.sub_block = p.sub_block;
  req.dest = p.dest;
  req.on_complete = [this, submitted_at, cb = std::move(p.cb)](
                        Status status, SimDuration /*device_latency*/) mutable {
    OnDeviceComplete(submitted_at, std::move(status), std::move(cb));
  };
  device_->SubmitRead(std::move(req));
}

void IoEngine::OnDeviceComplete(SimTime submitted_at, Status status, Callback cb) {
  --outstanding_;
  assert(outstanding_ >= 0);

  // Refill the device queue from the spill queue.
  if (!pending_.empty() && outstanding_ < config_.queue_depth) {
    Pending next = std::move(pending_.front());
    pending_.pop_front();
    Dispatch(std::move(next));
  }

  const bool interrupt = config_.completion_mode == CompletionMode::kInterrupt;
  const SimDuration reap_cpu =
      interrupt ? config_.cpu_complete_cost_interrupt : config_.cpu_complete_cost_polling;
  cpu_ns_->Add(static_cast<uint64_t>(reap_cpu.nanos()));
  const SimDuration delivery = interrupt ? config_.interrupt_delay : SimDuration(0);

  if (!status.ok()) {
    errors_->Add(1);
    if (obs_errors_ != nullptr) obs_errors_->Add(loop_->Now());
  }
  completed_->Add(1);

  auto finish = [this, submitted_at, status = std::move(status), cb = std::move(cb)]() mutable {
    const SimDuration e2e = loop_->Now() - submitted_at;
    latency_.Record(e2e);
    if (obs_lat_ != nullptr) obs_lat_->Record(loop_->Now(), e2e);
    if (obs_spans_ != nullptr) {
      obs_spans_->Span(obs_track_, "io.read", submitted_at, loop_->Now());
    }
    if (cb) cb(std::move(status), e2e);
  };
  if (delivery > SimDuration(0)) {
    loop_->ScheduleAfter(delivery, std::move(finish));
  } else {
    finish();
  }
}

double IoEngine::IopsPerCore() const {
  const double cpu_s = static_cast<double>(cpu_ns_->value()) / 1e9;
  if (cpu_s <= 0) return 0;
  return static_cast<double>(completed_->value()) / cpu_s;
}

}  // namespace sdm
