// CPU-optimized row cache: exact LRU with O(1) lookup/insert.
//
// Classic unordered_map + intrusive LRU list. Each entry carries ~56B of
// metadata (hash node, two list pointers, key, size) on top of the value —
// the "pay for memory overhead and optimize for CPU utilization" design of
// paper §4.3. Sharded by key hash to mirror CacheLib pools.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/row_cache.h"

namespace sdm {

struct CpuOptimizedCacheConfig {
  Bytes capacity = 64 * kMiB;
  int shards = 8;
  /// Accounted metadata per entry (hash bucket node + LRU pointers + key).
  Bytes per_entry_overhead = 56;
  /// Modeled CPU per lookup (hash + one probe + LRU splice).
  SimDuration lookup_cpu = Nanos(120);
};

class CpuOptimizedCache final : public RowCache {
 public:
  explicit CpuOptimizedCache(CpuOptimizedCacheConfig config);

  bool Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) override;
  void Insert(const RowKey& key, std::span<const uint8_t> value) override;
  bool Erase(const RowKey& key) override;
  [[nodiscard]] bool Contains(const RowKey& key) const override;

  [[nodiscard]] const RowCacheStats& stats() const override { return stats_; }
  [[nodiscard]] size_t entry_count() const override;
  [[nodiscard]] Bytes memory_used() const override;
  [[nodiscard]] Bytes capacity() const override { return config_.capacity; }
  [[nodiscard]] SimDuration LookupCpuCost() const override { return config_.lookup_cpu; }
  void Clear() override;

 private:
  struct Entry {
    RowKey key;
    std::vector<uint8_t> value;
    std::list<RowKey>::iterator lru_it;
  };

  struct RowKeyHash {
    size_t operator()(const RowKey& k) const { return HashRowKey(k); }
  };

  struct Shard {
    std::unordered_map<RowKey, Entry, RowKeyHash> map;
    std::list<RowKey> lru;  // front = most recent
    Bytes used = 0;
  };

  [[nodiscard]] Shard& ShardFor(const RowKey& key);
  void EvictFrom(Shard& shard, Bytes shard_capacity);
  [[nodiscard]] Bytes EntryFootprint(const Entry& e) const {
    return e.value.size() + config_.per_entry_overhead;
  }

  CpuOptimizedCacheConfig config_;
  std::vector<Shard> shards_;
  RowCacheStats stats_;
};

}  // namespace sdm
