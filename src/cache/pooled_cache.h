// Pooled-embedding cache (paper §4.4, Algorithm 1).
//
// Caches the *output* of an embedding operator — the pooled, dequantized
// vector — keyed by the full index sequence of the request (c == P in the
// paper's profiling: only whole-sequence reuse is cheap enough to exploit).
// A hit skips lookups, IO, dequantization and pooling entirely.
//
// The key uses an order-invariant hash so permutations of the same index
// multiset hit the same entry (pooling by sum is order-invariant).
// Sequences shorter than LenThreshold are not cached: short sequences are
// cheap to recompute and would crowd out long ones (Table 4 sweeps this).
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sdm {

struct PooledCacheConfig {
  Bytes capacity = 4 * kMiB;  ///< paper's study uses a 4GB cache at scale
  /// Minimum number of indices in a request for it to be cacheable.
  size_t len_threshold = 4;
};

struct PooledCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       ///< cacheable requests that missed
  uint64_t uncacheable = 0;  ///< requests below LenThreshold
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t hit_indices = 0;  ///< total indices saved by hits

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses + uncacheable;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  /// Average request length among hits ("Hit Avg Len" in Table 4).
  [[nodiscard]] double AvgHitLength() const {
    return hits == 0 ? 0.0 : static_cast<double>(hit_indices) / static_cast<double>(hits);
  }
};

/// Order-invariant 64-bit hash of an index multiset: commutative combine of
/// per-element mixes plus the count, so {a,b} and {b,a} collide by design
/// while {a} and {a,a} do not.
[[nodiscard]] uint64_t OrderInvariantHash(std::span<const RowIndex> indices);

class PooledEmbeddingCache {
 public:
  explicit PooledEmbeddingCache(PooledCacheConfig config);

  /// Returns the cached pooled vector for (table, indices), or nullptr.
  /// The pointer stays valid until the next Insert/Erase.
  [[nodiscard]] const std::vector<float>* Lookup(TableId table,
                                                 std::span<const RowIndex> indices);

  /// Caches a pooled output (no-op below LenThreshold).
  void Insert(TableId table, std::span<const RowIndex> indices,
              std::vector<float> pooled);

  /// Drops every entry for `table` (model update invalidation).
  void InvalidateTable(TableId table);

  void Clear();

  [[nodiscard]] const PooledCacheStats& stats() const { return stats_; }
  [[nodiscard]] size_t entry_count() const { return map_.size(); }
  [[nodiscard]] Bytes memory_used() const { return used_; }
  [[nodiscard]] const PooledCacheConfig& config() const { return config_; }

  /// Modeled CPU cost of hashing + probing for one request of `len` indices.
  [[nodiscard]] SimDuration LookupCpuCost(size_t len) const {
    return Nanos(60 + 4 * static_cast<int64_t>(len));
  }

 private:
  struct SeqKey {
    TableId table{};
    uint64_t hash = 0;
    bool operator==(const SeqKey&) const = default;
  };
  struct SeqKeyHash {
    size_t operator()(const SeqKey& k) const {
      return k.hash ^ (static_cast<uint64_t>(Raw(k.table)) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Entry {
    std::vector<float> pooled;
    size_t seq_len = 0;
    std::list<SeqKey>::iterator lru_it;
  };

  [[nodiscard]] Bytes EntryFootprint(const Entry& e) const {
    return e.pooled.size() * sizeof(float) + 64;  // value + metadata
  }
  void EvictIfNeeded();

  PooledCacheConfig config_;
  std::unordered_map<SeqKey, Entry, SeqKeyHash> map_;
  std::list<SeqKey> lru_;  // front = most recent
  Bytes used_ = 0;
  PooledCacheStats stats_;
};

}  // namespace sdm
