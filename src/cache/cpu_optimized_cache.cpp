#include "cache/cpu_optimized_cache.h"

#include <cassert>
#include <cstring>

namespace sdm {

CpuOptimizedCache::CpuOptimizedCache(CpuOptimizedCacheConfig config) : config_(config) {
  assert(config_.shards >= 1);
  shards_.resize(static_cast<size_t>(config_.shards));
}

CpuOptimizedCache::Shard& CpuOptimizedCache::ShardFor(const RowKey& key) {
  return shards_[HashRowKey(key) % shards_.size()];
}

bool CpuOptimizedCache::Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) {
  Shard& shard = ShardFor(key);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++stats_.misses;
    return false;
  }
  Entry& e = it->second;
  // LRU bump: splice to front.
  shard.lru.erase(e.lru_it);
  shard.lru.push_front(key);
  e.lru_it = shard.lru.begin();

  assert(out.size() >= e.value.size());
  std::memcpy(out.data(), e.value.data(), e.value.size());
  if (out_len != nullptr) *out_len = e.value.size();
  ++stats_.hits;
  return true;
}

void CpuOptimizedCache::Insert(const RowKey& key, std::span<const uint8_t> value) {
  Shard& shard = ShardFor(key);
  ++stats_.inserts;

  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Overwrite in place (model update path).
    shard.used -= EntryFootprint(it->second);
    it->second.value.assign(value.begin(), value.end());
    shard.used += EntryFootprint(it->second);
    shard.lru.erase(it->second.lru_it);
    shard.lru.push_front(key);
    it->second.lru_it = shard.lru.begin();
  } else {
    Entry e;
    e.key = key;
    e.value.assign(value.begin(), value.end());
    shard.lru.push_front(key);
    e.lru_it = shard.lru.begin();
    shard.used += EntryFootprint(e);
    shard.map.emplace(key, std::move(e));
  }
  EvictFrom(shard, config_.capacity / shards_.size());
}

bool CpuOptimizedCache::Contains(const RowKey& key) const {
  const Shard& shard = shards_[HashRowKey(key) % shards_.size()];
  return shard.map.find(key) != shard.map.end();
}

void CpuOptimizedCache::EvictFrom(Shard& shard, Bytes shard_capacity) {
  while (shard.used > shard_capacity && !shard.lru.empty()) {
    const RowKey victim = shard.lru.back();
    auto it = shard.map.find(victim);
    assert(it != shard.map.end());
    shard.used -= EntryFootprint(it->second);
    shard.lru.pop_back();
    shard.map.erase(it);
    ++stats_.evictions;
  }
}

bool CpuOptimizedCache::Erase(const RowKey& key) {
  Shard& shard = ShardFor(key);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  shard.used -= EntryFootprint(it->second);
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
  return true;
}

size_t CpuOptimizedCache::entry_count() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s.map.size();
  return n;
}

Bytes CpuOptimizedCache::memory_used() const {
  Bytes b = 0;
  for (const auto& s : shards_) b += s.used;
  return b;
}

void CpuOptimizedCache::Clear() {
  for (auto& s : shards_) {
    s.map.clear();
    s.lru.clear();
    s.used = 0;
  }
}

}  // namespace sdm
