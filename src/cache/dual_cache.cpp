#include "cache/dual_cache.h"

#include <algorithm>
#include <cassert>

namespace sdm {

DualRowCache::DualRowCache(DualCacheConfig config) : config_(config) {
  assert(config_.memory_optimized_fraction >= 0 && config_.memory_optimized_fraction <= 1);
  MemoryOptimizedCacheConfig mcfg = config_.memory_optimized;
  mcfg.capacity = static_cast<Bytes>(static_cast<double>(config_.capacity) *
                                     config_.memory_optimized_fraction);
  CpuOptimizedCacheConfig ccfg = config_.cpu_optimized;
  ccfg.capacity = config_.capacity - mcfg.capacity;
  ccfg.shards = config_.shards;
  // Degenerate splits still need a minimally functional partition.
  mcfg.capacity = std::max<Bytes>(mcfg.capacity, 4 * kKiB);
  ccfg.capacity = std::max<Bytes>(ccfg.capacity, 4 * kKiB);
  mem_ = std::make_unique<MemoryOptimizedCache>(mcfg);
  cpu_ = std::make_unique<CpuOptimizedCache>(ccfg);
}

void DualRowCache::RegisterTable(TableId table, Bytes row_bytes) {
  route_to_mem_[table] = row_bytes <= config_.routing_threshold;
}

bool DualRowCache::IsMemoryOptimizedRoute(TableId table) const {
  const auto it = route_to_mem_.find(table);
  assert(it != route_to_mem_.end() && "table not registered with the cache");
  return it->second;
}

RowCache* DualRowCache::Route(TableId table) {
  return IsMemoryOptimizedRoute(table) ? static_cast<RowCache*>(mem_.get())
                                       : static_cast<RowCache*>(cpu_.get());
}

const RowCache* DualRowCache::Route(TableId table) const {
  return IsMemoryOptimizedRoute(table) ? static_cast<const RowCache*>(mem_.get())
                                       : static_cast<const RowCache*>(cpu_.get());
}

bool DualRowCache::Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) {
  return Route(key.table)->Lookup(key, out, out_len);
}

void DualRowCache::Insert(const RowKey& key, std::span<const uint8_t> value) {
  Route(key.table)->Insert(key, value);
}

bool DualRowCache::Erase(const RowKey& key) { return Route(key.table)->Erase(key); }

bool DualRowCache::Contains(const RowKey& key) const {
  return Route(key.table)->Contains(key);
}

const RowCacheStats& DualRowCache::stats() const {
  combined_ = RowCacheStats{};
  const auto& m = mem_->stats();
  const auto& c = cpu_->stats();
  combined_.hits = m.hits + c.hits;
  combined_.misses = m.misses + c.misses;
  combined_.inserts = m.inserts + c.inserts;
  combined_.evictions = m.evictions + c.evictions;
  return combined_;
}

size_t DualRowCache::entry_count() const {
  return mem_->entry_count() + cpu_->entry_count();
}

Bytes DualRowCache::memory_used() const {
  return mem_->memory_used() + cpu_->memory_used();
}

SimDuration DualRowCache::LookupCpuCost() const {
  // Blend weighted by traffic so simulators without per-table routing info
  // still charge a sensible cost.
  const auto& m = mem_->stats();
  const auto& c = cpu_->stats();
  const uint64_t mt = m.hits + m.misses;
  const uint64_t ct = c.hits + c.misses;
  if (mt + ct == 0) {
    return SimDuration((mem_->LookupCpuCost().nanos() + cpu_->LookupCpuCost().nanos()) / 2);
  }
  const double blended =
      (static_cast<double>(mt) * static_cast<double>(mem_->LookupCpuCost().nanos()) +
       static_cast<double>(ct) * static_cast<double>(cpu_->LookupCpuCost().nanos())) /
      static_cast<double>(mt + ct);
  return SimDuration(static_cast<int64_t>(blended));
}

SimDuration DualRowCache::RouteCpuCost(TableId table) const {
  return Route(table)->LookupCpuCost();
}

void DualRowCache::Clear() {
  mem_->Clear();
  cpu_->Clear();
}

}  // namespace sdm
