#include "cache/memory_optimized_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sdm {

MemoryOptimizedCache::MemoryOptimizedCache(MemoryOptimizedCacheConfig config)
    : config_(config) {
  assert(config_.bucket_entries >= 1);
  const Bytes per_entry = config_.expected_value_bytes + config_.per_entry_overhead;
  const Bytes per_bucket = per_entry * static_cast<Bytes>(config_.bucket_entries);
  const size_t n = std::max<size_t>(1, config_.capacity / std::max<Bytes>(per_bucket, 1));
  buckets_.resize(n);
  bucket_budget_ = config_.capacity / n;
}

MemoryOptimizedCache::Bucket& MemoryOptimizedCache::BucketFor(const RowKey& key) {
  return buckets_[HashRowKey(key) % buckets_.size()];
}

bool MemoryOptimizedCache::Lookup(const RowKey& key, std::span<uint8_t> out,
                                  size_t* out_len) {
  Bucket& bucket = BucketFor(key);
  for (Entry& e : bucket.entries) {
    if (e.key == key) {
      e.referenced = true;
      assert(out.size() >= e.value.size());
      std::memcpy(out.data(), e.value.data(), e.value.size());
      if (out_len != nullptr) *out_len = e.value.size();
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

void MemoryOptimizedCache::Insert(const RowKey& key, std::span<const uint8_t> value) {
  Bucket& bucket = BucketFor(key);
  ++stats_.inserts;

  for (Entry& e : bucket.entries) {
    if (e.key == key) {
      used_ -= EntryFootprint(e);
      bucket.used -= EntryFootprint(e);
      e.value.assign(value.begin(), value.end());
      e.referenced = true;
      used_ += EntryFootprint(e);
      bucket.used += EntryFootprint(e);
      EvictFrom(bucket);
      return;
    }
  }

  Entry e;
  e.key = key;
  e.value.assign(value.begin(), value.end());
  e.referenced = true;
  bucket.used += EntryFootprint(e);
  used_ += EntryFootprint(e);
  bucket.entries.push_back(std::move(e));
  ++entry_count_;
  EvictFrom(bucket);
}

void MemoryOptimizedCache::EvictFrom(Bucket& bucket) {
  // Evict while the bucket exceeds its byte budget or its associativity.
  while ((bucket.used > bucket_budget_ ||
          bucket.entries.size() > static_cast<size_t>(config_.bucket_entries)) &&
         bucket.entries.size() > 1) {
    // CLOCK: advance the hand, clearing ref bits, until an unreferenced
    // victim is found (bounded by 2 sweeps).
    size_t inspected = 0;
    const size_t limit = 2 * bucket.entries.size();
    while (inspected < limit) {
      if (bucket.clock_hand >= bucket.entries.size()) bucket.clock_hand = 0;
      Entry& candidate = bucket.entries[bucket.clock_hand];
      if (candidate.referenced) {
        candidate.referenced = false;
        ++bucket.clock_hand;
        ++inspected;
        continue;
      }
      // Evict: swap-with-last to keep the vector dense.
      used_ -= EntryFootprint(candidate);
      bucket.used -= EntryFootprint(candidate);
      std::swap(candidate, bucket.entries.back());
      bucket.entries.pop_back();
      --entry_count_;
      ++stats_.evictions;
      break;
    }
    if (inspected >= limit) {
      // Pathological: everything referenced twice; force-evict the hand.
      if (bucket.clock_hand >= bucket.entries.size()) bucket.clock_hand = 0;
      Entry& victim = bucket.entries[bucket.clock_hand];
      used_ -= EntryFootprint(victim);
      bucket.used -= EntryFootprint(victim);
      std::swap(victim, bucket.entries.back());
      bucket.entries.pop_back();
      --entry_count_;
      ++stats_.evictions;
    }
  }
}

bool MemoryOptimizedCache::Erase(const RowKey& key) {
  Bucket& bucket = BucketFor(key);
  for (size_t i = 0; i < bucket.entries.size(); ++i) {
    if (bucket.entries[i].key == key) {
      used_ -= EntryFootprint(bucket.entries[i]);
      bucket.used -= EntryFootprint(bucket.entries[i]);
      std::swap(bucket.entries[i], bucket.entries.back());
      bucket.entries.pop_back();
      --entry_count_;
      return true;
    }
  }
  return false;
}

bool MemoryOptimizedCache::Contains(const RowKey& key) const {
  const Bucket& bucket = buckets_[HashRowKey(key) % buckets_.size()];
  for (const Entry& e : bucket.entries) {
    if (e.key == key) return true;
  }
  return false;
}

void MemoryOptimizedCache::Clear() {
  for (auto& b : buckets_) {
    b.entries.clear();
    b.used = 0;
    b.clock_hand = 0;
  }
  entry_count_ = 0;
  used_ = 0;
}

}  // namespace sdm
