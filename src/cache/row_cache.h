// Row-cache interface (paper §4.3).
//
// The SM cache stores raw quantized embedding rows keyed by (table, row).
// Two concrete designs mirror the paper's CacheLib tuning choice:
//   - MemoryOptimizedCache: pay CPU (bucket search) to minimize per-entry
//     metadata — right for the many small-dim tables;
//   - CpuOptimizedCache: pay memory (exact LRU + hash node per entry) for
//     O(1) operations — right for large-dim tables.
// DualRowCache routes between them on embedding size (§4.3 "dual cache").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/types.h"

namespace sdm {

struct RowKey {
  TableId table{};
  RowIndex row = 0;

  bool operator==(const RowKey&) const = default;
};

/// 64-bit mix of a RowKey (splitmix-style finalizer; good avalanche).
[[nodiscard]] inline uint64_t HashRowKey(const RowKey& key) {
  uint64_t z = (static_cast<uint64_t>(Raw(key.table)) << 48) ^ key.row;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct RowCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class RowCache {
 public:
  virtual ~RowCache() = default;

  /// Copies the cached value into `out` if present (out must be at least the
  /// stored size; returns the stored size via out_len). Returns hit/miss.
  virtual bool Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) = 0;

  /// Inserts/overwrites a value. May evict.
  virtual void Insert(const RowKey& key, std::span<const uint8_t> value) = 0;

  /// Removes a key if present (model update invalidation). Returns whether
  /// it was present.
  virtual bool Erase(const RowKey& key) = 0;

  /// Residency probe with no side effects: no hit/miss accounting, no
  /// recency update. The prefetcher uses this to skip rows already cached
  /// without perturbing the demand path's eviction order or stats.
  [[nodiscard]] virtual bool Contains(const RowKey& key) const = 0;

  [[nodiscard]] virtual const RowCacheStats& stats() const = 0;
  [[nodiscard]] virtual size_t entry_count() const = 0;
  /// Bytes used including the design's per-entry metadata overhead.
  [[nodiscard]] virtual Bytes memory_used() const = 0;
  [[nodiscard]] virtual Bytes capacity() const = 0;

  /// Modeled CPU cost of one lookup (charged by the simulator).
  [[nodiscard]] virtual SimDuration LookupCpuCost() const = 0;

  virtual void Clear() = 0;
};

}  // namespace sdm
