// Block cache and the two-level (row-over-block) arrangement the paper
// evaluated and rejected (§4.3: "We also evaluated multi-level cache (row
// cache backed by a block cache) but did not observe any benefit").
//
// The block cache keys 4KB-aligned device ranges. On a row-cache miss the
// two-level cache probes the block layer; a block hit avoids device IO but
// still pays a copy-out, and — with the low spatial locality of Fig. 5 —
// blocks mostly carry a single useful row, so the block layer just dilutes
// FM that the row cache would use at 32x the row density.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sdm {

struct BlockCacheConfig {
  Bytes capacity = 32 * kMiB;
  /// Modeled CPU per probe.
  SimDuration lookup_cpu = Nanos(150);
};

struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t t = hits + misses;
    return t == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(t);
  }
};

/// LRU cache of 4KB device blocks, keyed by (device, block index).
class BlockCache {
 public:
  explicit BlockCache(BlockCacheConfig config);

  struct BlockKey {
    uint32_t device = 0;
    uint64_t block = 0;
    bool operator==(const BlockKey&) const = default;
  };

  /// Copies the sub-range [offset_in_block, +len) of a cached block into
  /// `out`. Returns hit/miss.
  bool ReadRange(const BlockKey& key, Bytes offset_in_block, std::span<uint8_t> out);

  /// Inserts a whole block (block.size() must be kBlockSize).
  void InsertBlock(const BlockKey& key, std::span<const uint8_t> block);

  /// Inserts every whole kBlockSize chunk of `data` as consecutive blocks
  /// starting at (device, first_block) — the fill path of a coalesced
  /// multi-block read. `data.size()` must be a multiple of kBlockSize.
  void InsertBlocks(uint32_t device, uint64_t first_block, std::span<const uint8_t> data);

  [[nodiscard]] bool Contains(const BlockKey& key) const;
  [[nodiscard]] const BlockCacheStats& stats() const { return stats_; }
  [[nodiscard]] size_t block_count() const { return map_.size(); }
  [[nodiscard]] Bytes memory_used() const { return map_.size() * (kBlockSize + 64); }
  [[nodiscard]] Bytes capacity() const { return config_.capacity; }
  [[nodiscard]] SimDuration LookupCpuCost() const { return config_.lookup_cpu; }
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const BlockKey& k) const {
      uint64_t z = (static_cast<uint64_t>(k.device) << 48) ^ k.block;
      z *= 0x9e3779b97f4a7c15ULL;
      return z ^ (z >> 29);
    }
  };
  struct Entry {
    std::vector<uint8_t> data;
    std::list<BlockKey>::iterator lru_it;
  };

  void EvictIfNeeded();

  BlockCacheConfig config_;
  std::unordered_map<BlockKey, Entry, KeyHash> map_;
  std::list<BlockKey> lru_;
  BlockCacheStats stats_;
};

}  // namespace sdm
