// Memory-optimized row cache: set-associative buckets with CLOCK eviction.
//
// The "less overhead per key-value pair, but requires search in a bucket"
// design of paper §4.3 (CacheLib compact-cache style). Entries carry ~16B of
// metadata; there is no global LRU list — each bucket evicts locally with a
// second-chance (CLOCK) scan, so lookups pay a linear probe of the bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/row_cache.h"

namespace sdm {

struct MemoryOptimizedCacheConfig {
  Bytes capacity = 64 * kMiB;
  /// Expected stored-row size; sizes the bucket array at construction.
  Bytes expected_value_bytes = 64;
  /// Target entries per bucket (associativity).
  int bucket_entries = 8;
  /// Accounted metadata per entry (key + length + ref bit, packed).
  Bytes per_entry_overhead = 16;
  /// Modeled CPU per lookup (hash + bucket scan).
  SimDuration lookup_cpu = Nanos(250);
};

class MemoryOptimizedCache final : public RowCache {
 public:
  explicit MemoryOptimizedCache(MemoryOptimizedCacheConfig config);

  bool Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) override;
  void Insert(const RowKey& key, std::span<const uint8_t> value) override;
  bool Erase(const RowKey& key) override;
  [[nodiscard]] bool Contains(const RowKey& key) const override;

  [[nodiscard]] const RowCacheStats& stats() const override { return stats_; }
  [[nodiscard]] size_t entry_count() const override { return entry_count_; }
  [[nodiscard]] Bytes memory_used() const override { return used_; }
  [[nodiscard]] Bytes capacity() const override { return config_.capacity; }
  [[nodiscard]] SimDuration LookupCpuCost() const override { return config_.lookup_cpu; }
  void Clear() override;

  [[nodiscard]] size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Entry {
    RowKey key;
    std::vector<uint8_t> value;
    bool referenced = false;  // CLOCK second-chance bit
  };

  struct Bucket {
    std::vector<Entry> entries;
    Bytes used = 0;
    size_t clock_hand = 0;
  };

  [[nodiscard]] Bucket& BucketFor(const RowKey& key);
  void EvictFrom(Bucket& bucket);
  [[nodiscard]] Bytes EntryFootprint(const Entry& e) const {
    return e.value.size() + config_.per_entry_overhead;
  }

  MemoryOptimizedCacheConfig config_;
  Bytes bucket_budget_ = 0;
  std::vector<Bucket> buckets_;
  RowCacheStats stats_;
  size_t entry_count_ = 0;
  Bytes used_ = 0;
};

}  // namespace sdm
