// Unified row cache with dual internal organization (paper §4.3).
//
// One logical cache over all SM-resident tables ("unified" beats per-table
// partitioning for space efficiency), implemented as two internal caches:
// tables whose stored row is <= routing_threshold bytes go to the
// memory-optimized cache, larger rows to the CPU-optimized cache — exactly
// the paper's routing rule ("Embedding dim <= 255 will be routed to memory
// optimized cache").
#pragma once

#include <map>
#include <memory>

#include "cache/cpu_optimized_cache.h"
#include "cache/memory_optimized_cache.h"
#include "cache/row_cache.h"

namespace sdm {

struct DualCacheConfig {
  Bytes capacity = 128 * kMiB;
  /// Fraction of capacity given to the memory-optimized partition.
  double memory_optimized_fraction = 0.5;
  /// Stored-row-size routing boundary (<= goes to memory-optimized).
  Bytes routing_threshold = 255;
  int shards = 8;
  MemoryOptimizedCacheConfig memory_optimized;  // capacity overridden
  CpuOptimizedCacheConfig cpu_optimized;        // capacity/shards overridden
};

class DualRowCache final : public RowCache {
 public:
  explicit DualRowCache(DualCacheConfig config);

  /// Declares a table's stored row size so lookups can route without
  /// knowing the value. Must be called before the first access for that
  /// table (the model loader does this).
  void RegisterTable(TableId table, Bytes row_bytes);

  [[nodiscard]] bool IsMemoryOptimizedRoute(TableId table) const;

  bool Lookup(const RowKey& key, std::span<uint8_t> out, size_t* out_len) override;
  void Insert(const RowKey& key, std::span<const uint8_t> value) override;
  bool Erase(const RowKey& key) override;
  [[nodiscard]] bool Contains(const RowKey& key) const override;

  [[nodiscard]] const RowCacheStats& stats() const override;
  [[nodiscard]] size_t entry_count() const override;
  [[nodiscard]] Bytes memory_used() const override;
  [[nodiscard]] Bytes capacity() const override { return config_.capacity; }

  /// Cost of a lookup depends on the route; this returns the blended cost of
  /// the last routed table — callers wanting exact costs use RouteCpuCost.
  [[nodiscard]] SimDuration LookupCpuCost() const override;
  [[nodiscard]] SimDuration RouteCpuCost(TableId table) const;

  void Clear() override;

  [[nodiscard]] const MemoryOptimizedCache& memory_optimized() const { return *mem_; }
  [[nodiscard]] const CpuOptimizedCache& cpu_optimized() const { return *cpu_; }

 private:
  [[nodiscard]] RowCache* Route(TableId table);
  [[nodiscard]] const RowCache* Route(TableId table) const;

  DualCacheConfig config_;
  std::unique_ptr<MemoryOptimizedCache> mem_;
  std::unique_ptr<CpuOptimizedCache> cpu_;
  std::map<TableId, bool> route_to_mem_;
  mutable RowCacheStats combined_;
};

}  // namespace sdm
