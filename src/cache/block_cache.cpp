#include "cache/block_cache.h"

#include <cassert>
#include <cstring>

namespace sdm {

BlockCache::BlockCache(BlockCacheConfig config) : config_(config) {}

bool BlockCache::ReadRange(const BlockKey& key, Bytes offset_in_block,
                           std::span<uint8_t> out) {
  assert(offset_in_block + out.size() <= kBlockSize);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  Entry& e = it->second;
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  std::memcpy(out.data(), e.data.data() + offset_in_block, out.size());
  ++stats_.hits;
  return true;
}

void BlockCache::InsertBlock(const BlockKey& key, std::span<const uint8_t> block) {
  assert(block.size() == kBlockSize);
  ++stats_.inserts;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.data.assign(block.begin(), block.end());
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return;
  }
  Entry e;
  e.data.assign(block.begin(), block.end());
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  map_.emplace(key, std::move(e));
  EvictIfNeeded();
}

void BlockCache::InsertBlocks(uint32_t device, uint64_t first_block,
                              std::span<const uint8_t> data) {
  assert(data.size() % kBlockSize == 0);
  for (Bytes off = 0; off < data.size(); off += kBlockSize) {
    InsertBlock(BlockKey{device, first_block + off / kBlockSize},
                data.subspan(off, kBlockSize));
  }
}

bool BlockCache::Contains(const BlockKey& key) const { return map_.contains(key); }

void BlockCache::EvictIfNeeded() {
  while (memory_used() > config_.capacity && !lru_.empty()) {
    const BlockKey victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
}

void BlockCache::Clear() {
  map_.clear();
  lru_.clear();
  stats_ = BlockCacheStats{};
}

}  // namespace sdm
