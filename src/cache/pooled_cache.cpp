#include "cache/pooled_cache.h"

#include <cassert>

namespace sdm {

uint64_t OrderInvariantHash(std::span<const RowIndex> indices) {
  // Commutative (addition) combine of strong per-element mixes. Collisions
  // between distinct multisets are ~2^-64; permutations collide by design.
  uint64_t acc = 0x243f6a8885a308d3ULL;  // pi digits; any constant works
  for (const RowIndex idx : indices) {
    uint64_t z = idx + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    acc += z;
  }
  // Fold in the count so {a} and {a, a} differ even under addition.
  acc ^= indices.size() * 0xd6e8feb86659fd93ULL;
  return acc;
}

PooledEmbeddingCache::PooledEmbeddingCache(PooledCacheConfig config) : config_(config) {}

const std::vector<float>* PooledEmbeddingCache::Lookup(TableId table,
                                                       std::span<const RowIndex> indices) {
  if (indices.size() < config_.len_threshold) {
    ++stats_.uncacheable;
    return nullptr;
  }
  const SeqKey key{table, OrderInvariantHash(indices)};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& e = it->second;
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  ++stats_.hits;
  stats_.hit_indices += indices.size();
  return &e.pooled;
}

void PooledEmbeddingCache::Insert(TableId table, std::span<const RowIndex> indices,
                                  std::vector<float> pooled) {
  if (indices.size() < config_.len_threshold) return;
  const SeqKey key{table, OrderInvariantHash(indices)};
  ++stats_.inserts;

  auto it = map_.find(key);
  if (it != map_.end()) {
    used_ -= EntryFootprint(it->second);
    it->second.pooled = std::move(pooled);
    it->second.seq_len = indices.size();
    used_ += EntryFootprint(it->second);
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
  } else {
    Entry e;
    e.pooled = std::move(pooled);
    e.seq_len = indices.size();
    lru_.push_front(key);
    e.lru_it = lru_.begin();
    used_ += EntryFootprint(e);
    map_.emplace(key, std::move(e));
  }
  EvictIfNeeded();
}

void PooledEmbeddingCache::EvictIfNeeded() {
  while (used_ > config_.capacity && !lru_.empty()) {
    const SeqKey victim = lru_.back();
    auto it = map_.find(victim);
    assert(it != map_.end());
    used_ -= EntryFootprint(it->second);
    lru_.pop_back();
    map_.erase(it);
    ++stats_.evictions;
  }
}

void PooledEmbeddingCache::InvalidateTable(TableId table) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.table == table) {
      used_ -= EntryFootprint(it->second);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void PooledEmbeddingCache::Clear() {
  map_.clear();
  lru_.clear();
  used_ = 0;
}

}  // namespace sdm
