#include "serving/cluster.h"

#include <cassert>

namespace sdm {

namespace {

uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StickyRouter::StickyRouter(size_t num_hosts, RoutingPolicy policy, uint64_t seed)
    : num_hosts_(num_hosts), policy_(policy), rng_(seed) {
  assert(num_hosts >= 1);
}

size_t StickyRouter::Route(UserId user) const {
  if (policy_ == RoutingPolicy::kUserSticky) {
    return static_cast<size_t>(Mix64(user) % num_hosts_);
  }
  return static_cast<size_t>(rng_.NextBounded(num_hosts_));
}

ClusterSimulation::ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                                     RoutingPolicy policy)
    : router_(num_hosts, policy, host_config.seed ^ 0xc1u) {
  assert(num_hosts >= 1);
  hosts_.reserve(num_hosts);
  for (size_t i = 0; i < num_hosts; ++i) {
    HostSimConfig cfg = host_config;
    cfg.seed = host_config.seed ^ Mix64(i + 1);
    hosts_.push_back(std::make_unique<HostSimulation>(cfg));
  }
}

Status ClusterSimulation::LoadModel(const ModelConfig& model) {
  for (auto& h : hosts_) {
    if (Status s = h->LoadModel(model); !s.ok()) return s;
  }
  return Status::Ok();
}

ClusterRunReport ClusterSimulation::Run(double total_qps, uint64_t num_queries) {
  // Partition a global user stream by the router. Each host then serves its
  // sub-population at its share of the global rate. Hosts run on separate
  // event loops (they do not interact beyond routing), so running them
  // sequentially is exact.
  std::vector<std::vector<UserId>> per_host_users(hosts_.size());
  // Reuse the first host's generator distributions to draw the user stream.
  QueryGenerator& reference = hosts_[0]->workload();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const Query q = reference.Next();  // draws a popularity-weighted user
    per_host_users[router_.Route(q.user)].push_back(q.user);
  }

  ClusterRunReport report;
  report.hosts.reserve(hosts_.size());
  double hit_sum = 0;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    HostSimulation& host = *hosts_[h];
    const auto& users = per_host_users[h];
    if (users.empty()) {
      report.hosts.push_back(HostRunReport{});
      continue;
    }
    // Serve this host's routed queries at the proportional rate by feeding
    // the exact user sequence through the host's own engine.
    const double host_qps =
        total_qps * static_cast<double>(users.size()) / static_cast<double>(num_queries);
    HostRunReport r = host.RunUsers(users, host_qps);
    hit_sum += r.row_cache_hit_rate;
    report.aggregate_qps += r.achieved_qps;
    report.hosts.push_back(std::move(r));
  }
  report.mean_hit_rate = hit_sum / static_cast<double>(hosts_.size());
  return report;
}

}  // namespace sdm
