#include "serving/cluster.h"

#include <cassert>
#include <cstdio>

#include "common/kv_format.h"
#include "fault/replication_manager.h"
#include "serving/arrival_loop.h"
#include "serving/sharded_cluster.h"

namespace sdm {

namespace {

uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-host workload seed; derived exactly like MultiTenantHost's
/// per-tenant seed so a disaggregated cluster with kLocal routing and an
/// instant fabric serves byte-identical query streams to RunShared.
uint64_t HostWorkloadSeed(const WorkloadConfig& base, size_t host_index) {
  return base.seed ^ Mix64(0x7e0a + host_index);
}

}  // namespace

StickyRouter::StickyRouter(size_t num_hosts, RoutingPolicy policy, uint64_t seed)
    : num_hosts_(num_hosts), policy_(policy), rng_(seed) {
  assert(num_hosts >= 1);
}

size_t StickyRouter::Route(UserId user) const {
  if (policy_ == RoutingPolicy::kRandom) {
    return static_cast<size_t>(rng_.NextBounded(num_hosts_));
  }
  // kUserSticky; kLocal never reaches the router (the cluster keeps those
  // arrivals where they land), so the hash is a safe default.
  return static_cast<size_t>(Mix64(user) % num_hosts_);
}

ClusterSimulation::ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                                     RoutingPolicy policy)
    : ClusterSimulation(num_hosts, host_config, policy, DisaggregatedConfig{}) {}

ClusterSimulation::ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                                     RoutingPolicy policy,
                                     const DisaggregatedConfig& disaggregated)
    : base_config_(host_config), router_(num_hosts, policy, host_config.seed ^ 0xc1u) {
  assert(num_hosts >= 1);
  if (disaggregated.enabled && disaggregated.num_shards >= 2) {
    // Parallel runtime: host shards + device shard on worker threads.
    sharded_ = std::make_unique<ShardedClusterRuntime>(num_hosts, host_config, policy,
                                                       disaggregated.num_shards);
    return;
  }
  if (!disaggregated.enabled) {
    hosts_.reserve(num_hosts);
    for (size_t i = 0; i < num_hosts; ++i) {
      HostSimConfig cfg = host_config;
      cfg.seed = host_config.seed ^ Mix64(i + 1);
      hosts_.push_back(std::make_unique<HostSimulation>(cfg));
    }
    return;
  }

  // ---- Disaggregated: one fabric-attached device stack for all hosts ----
  FabricServiceConfig fcfg;
  for (const auto& ssd : base_config_.host.ssds) {
    fcfg.device.sm_specs.push_back(ssd);
    fcfg.device.sm_backing_bytes.push_back(base_config_.sm_backing_per_device);
  }
  fcfg.device.tuning = base_config_.tuning;
  fcfg.device.seed = base_config_.seed;
  fcfg.link.latency = base_config_.tuning.fabric_latency;
  fcfg.link.bandwidth_bytes_per_sec = base_config_.tuning.fabric_bandwidth_bytes_per_sec;
  fcfg.link.queueing = base_config_.tuning.fabric_queueing;
  if (base_config_.tuning.obs.enabled()) {
    // One instance for the whole single-loop cluster; the shared device
    // stack records under "svc/", host i's store under "host<i>/".
    obs_ = std::make_unique<Observability>(base_config_.tuning.obs);
    fcfg.device.obs = obs_.get();
    fcfg.device.obs_prefix = "svc/";
  }
  fabric_ = std::make_unique<FabricAttachedService>(std::move(fcfg), &dloop_);
  dhosts_.resize(num_hosts);
  for (size_t i = 0; i < num_hosts; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "host-%zu", i);
    dhosts_[i].id = fabric_->AttachHost(name, TenantClass::kForeground);
  }
}

ClusterSimulation::~ClusterSimulation() = default;

size_t ClusterSimulation::size() const {
  if (sharded_ != nullptr) return sharded_->host_count();
  return disaggregated() ? dhosts_.size() : hosts_.size();
}

SdmStore& ClusterSimulation::host_store(size_t i) {
  if (sharded_ != nullptr) return sharded_->host_store(i);
  return *dhosts_[i].store;
}

size_t ClusterSimulation::RouteTarget(size_t source, UserId user) const {
  if (router_.policy() == RoutingPolicy::kLocal) return source % size();
  return router_.Route(user);
}

Status ClusterSimulation::LoadModel(const ModelConfig& model) {
  if (sharded_ != nullptr) return sharded_->LoadModel(model);
  if (!disaggregated()) {
    for (auto& h : hosts_) {
      if (Status s = h->LoadModel(model); !s.ok()) return s;
    }
    return Status::Ok();
  }

  // ---- Disaggregated: each host is a shard on the fabric service ----
  if (Status s = base_config_.tuning.ValidateForDisaggregated(); !s.ok()) return s;
  if (fabric_->device_service().device_count() == 0) {
    return FailedPreconditionError("disaggregated cluster needs a host spec with SSDs");
  }
  if (!dhosts_.empty() && dhosts_[0].store != nullptr) {
    return FailedPreconditionError("model already loaded");
  }
  for (size_t i = 0; i < dhosts_.size(); ++i) {
    DisaggregatedHost& h = dhosts_[i];

    SdmStoreConfig scfg;
    scfg.fm_capacity = base_config_.fm_capacity;
    scfg.tuning = base_config_.tuning;
    scfg.seed = base_config_.seed ^ Mix64(i + 0x7e0a);
    scfg.shared_device = &fabric_->device_service();
    scfg.tenant_id = h.id;
    scfg.tenant_class = TenantClass::kForeground;
    if (obs_ != nullptr) {
      scfg.obs = obs_.get();
      scfg.obs_prefix = "host" + std::to_string(i) + "/";
    }
    h.store = std::make_unique<SdmStore>(scfg, &dloop_);

    auto report = ModelLoader::Load(model, base_config_.loader, h.store.get());
    if (!report.ok()) return report.status();

    InferenceConfig icfg = base_config_.inference;
    icfg.accelerator = base_config_.host.accelerator;
    icfg.dense.flops_per_sec = base_config_.host.dense_flops;
    if (icfg.max_concurrent_queries <= 0) {
      icfg.max_concurrent_queries = base_config_.host.cores();
    }
    h.engine = std::make_unique<InferenceEngine>(h.store.get(), model, icfg);

    WorkloadConfig wcfg = base_config_.workload;
    wcfg.seed = HostWorkloadSeed(base_config_.workload, i);
    h.workload = std::make_unique<QueryGenerator>(model, wcfg);
  }
  return Status::Ok();
}

ClusterRunReport ClusterSimulation::Run(double total_qps, uint64_t num_queries) {
  assert(!disaggregated());
  if (disaggregated()) return {};  // wrong-mode call: fail empty, not UB
  // Partition a global user stream by the router. Each host then serves its
  // sub-population at its share of the global rate. Hosts run on separate
  // event loops (they do not interact beyond routing), so running them
  // sequentially is exact.
  std::vector<std::vector<UserId>> per_host_users(hosts_.size());
  // Reuse the first host's generator distributions to draw the user stream.
  QueryGenerator& reference = hosts_[0]->workload();
  for (uint64_t i = 0; i < num_queries; ++i) {
    const Query q = reference.Next();  // draws a popularity-weighted user
    per_host_users[RouteTarget(i, q.user)].push_back(q.user);
  }

  ClusterRunReport report;
  report.hosts.reserve(hosts_.size());
  double hit_weighted = 0;
  uint64_t served_total = 0;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    HostSimulation& host = *hosts_[h];
    const auto& users = per_host_users[h];
    if (users.empty()) {
      // Idle host: default report, distinguishable by queries_served == 0.
      report.hosts.push_back(HostRunReport{});
      continue;
    }
    // Serve this host's routed queries at the proportional rate by feeding
    // the exact user sequence through the host's own engine.
    const double host_qps =
        total_qps * static_cast<double>(users.size()) / static_cast<double>(num_queries);
    HostRunReport r = host.RunUsers(users, host_qps);
    hit_weighted += r.row_cache_hit_rate * static_cast<double>(r.queries_served);
    served_total += r.queries_served;
    report.aggregate_qps += r.achieved_qps;
    report.hosts.push_back(std::move(r));
  }
  // Weight by served queries: idle hosts must not deflate the mean, and a
  // host serving most of the traffic should dominate it.
  report.mean_hit_rate =
      served_total == 0 ? 0 : hit_weighted / static_cast<double>(served_total);
  return report;
}

DisaggregatedRunReport ClusterSimulation::RunDisaggregated(double total_qps,
                                                           uint64_t num_queries) {
  assert(disaggregated());
  assert(total_qps > 0);
  if (sharded_ != nullptr) return sharded_->Run(total_qps, num_queries);
  DisaggregatedRunReport report;
  if (dhosts_.empty() || dhosts_[0].store == nullptr) return report;
  const size_t n = dhosts_.size();
  const double qps_each = total_qps / static_cast<double>(n);
  const uint64_t queries_each = num_queries / n;
  SharedDeviceService& service = fabric_->device_service();

  // ---- Per-run snapshots (counters are cumulative across runs) ----
  struct Snapshot {
    uint64_t cache_hits0 = 0;
    uint64_t cache_miss0 = 0;
    TenantIoShare share0;
    SimDuration queue_time0;
    uint64_t replica0 = 0;
    uint64_t repairs0 = 0;
  };
  std::vector<Snapshot> snaps(n);
  for (size_t i = 0; i < n; ++i) {
    if (DualRowCache* rc = dhosts_[i].store->row_cache(); rc != nullptr) {
      snaps[i].cache_hits0 = rc->stats().hits;
      snaps[i].cache_miss0 = rc->stats().misses;
    }
    snaps[i].share0 = fabric_->host_io_share(dhosts_[i].id);
    snaps[i].queue_time0 = fabric_->host_throttle_queue_time(dhosts_[i].id);
    snaps[i].replica0 = dhosts_[i].engine->lookups().stats().CounterValue("replica_reads");
    snaps[i].repairs0 = dhosts_[i].engine->lookups().stats().CounterValue("read_repairs");
  }
  uint64_t sm_reads0 = 0;
  uint64_t corrupt0 = 0;
  for (size_t d = 0; d < service.device_count(); ++d) {
    sm_reads0 += service.device(d).stats().CounterValue("reads");
    corrupt0 += service.device(d).stats().CounterValue("blocks_corrupt");
  }
  const ReplicationManager* repl = service.replication();
  const uint64_t replicated0 = repl != nullptr ? repl->extents_replicated() : 0;
  const CrossRequestIoStats io0 = service.cross_request_io_stats();
  const FabricLinkStats fab0 = fabric_->fabric_stats();

  // ---- Interleave every host's arrivals; the router redistributes ----
  std::vector<ArrivalParticipant> participants;
  participants.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    participants.push_back(ArrivalParticipant{dhosts_[i].engine.get(),
                                              dhosts_[i].workload.get(),
                                              base_config_.seed ^ Mix64(i + 1) ^ 0xa11e});
  }
  const SimTime t_begin = dloop_.Now();
  std::vector<ArrivalStats> states = RunInterleavedArrivals(
      dloop_, participants, qps_each, queries_each,
      [this](size_t source, const Query& q) { return RouteTarget(source, q.user); });
  const SimTime t_end = dloop_.Now();
  const double span_s = (t_end - t_begin).seconds();

  // ---- Reports ----
  double hit_weighted = 0;
  uint64_t served_total = 0;
  for (size_t i = 0; i < n; ++i) {
    const ArrivalStats& st = states[i];
    DisaggregatedHostReport hr;
    hr.run.queries_completed = st.completed;
    hr.run.queries_served = st.served;
    hr.run.offered_qps = qps_each;
    hr.run.achieved_qps =
        span_s > 0 ? static_cast<double>(st.completed) / span_s : 0;
    hr.run.p50 = SimDuration(st.latencies.P50());
    hr.run.p95 = SimDuration(st.latencies.P95());
    hr.run.p99 = SimDuration(st.latencies.P99());
    hr.run.mean = SimDuration(static_cast<int64_t>(st.latencies.mean()));
    if (DualRowCache* rc = dhosts_[i].store->row_cache(); rc != nullptr) {
      const uint64_t h = rc->stats().hits - snaps[i].cache_hits0;
      const uint64_t m = rc->stats().misses - snaps[i].cache_miss0;
      hr.run.row_cache_hit_rate =
          (h + m) == 0 ? 0 : static_cast<double>(h) / static_cast<double>(h + m);
    }
    hr.run.queries_degraded = st.degraded;
    hr.run.rows_failed = st.rows_failed;
    report.queries_degraded += st.degraded;
    report.rows_failed += st.rows_failed;
    hr.run.replica_reads =
        dhosts_[i].engine->lookups().stats().CounterValue("replica_reads") -
        snaps[i].replica0;
    hr.run.read_repairs =
        dhosts_[i].engine->lookups().stats().CounterValue("read_repairs") -
        snaps[i].repairs0;
    report.replica_reads += hr.run.replica_reads;
    report.read_repairs += hr.run.read_repairs;
    hr.share = fabric_->host_io_share(dhosts_[i].id).Since(snaps[i].share0);
    hr.run.singleflight_hits = hr.share.singleflight_hits;
    hr.throttle_queue_time =
        fabric_->host_throttle_queue_time(dhosts_[i].id) - snaps[i].queue_time0;
    report.cross_host_hits += hr.share.cross_tenant_hits;
    report.cross_host_bytes_saved += hr.share.cross_tenant_bytes_saved;
    report.sm_logical_bytes += dhosts_[i].store->sm_used_bytes();
    report.aggregate_qps += hr.run.achieved_qps;
    hit_weighted += hr.run.row_cache_hit_rate * static_cast<double>(st.served);
    served_total += st.served;
    report.hosts.push_back(std::move(hr));
  }
  report.mean_hit_rate =
      served_total == 0 ? 0 : hit_weighted / static_cast<double>(served_total);

  report.sm_unique_bytes = service.sm_used_bytes();
  uint64_t sm_reads1 = 0;
  uint64_t corrupt1 = 0;
  for (size_t d = 0; d < service.device_count(); ++d) {
    sm_reads1 += service.device(d).stats().CounterValue("reads");
    corrupt1 += service.device(d).stats().CounterValue("blocks_corrupt");
  }
  report.sm_device_reads = sm_reads1 - sm_reads0;
  report.blocks_corrupt = corrupt1 - corrupt0;
  if (repl != nullptr) report.extents_replicated = repl->extents_replicated() - replicated0;
  report.io = service.cross_request_io_stats().Since(io0);
  const FabricLinkStats fab1 = fabric_->fabric_stats();
  report.fabric.requests = fab1.requests - fab0.requests;
  report.fabric.responses = fab1.responses - fab0.responses;
  report.fabric.request_bytes = fab1.request_bytes - fab0.request_bytes;
  report.fabric.response_bytes = fab1.response_bytes - fab0.response_bytes;
  report.fabric.queue_time = fab1.queue_time - fab0.queue_time;
  report.fabric.dropped = fab1.dropped - fab0.dropped;
  report.fabric.partition_deferred = fab1.partition_deferred - fab0.partition_deferred;
  return report;
}

std::string ClusterSimulation::ObsMetricsJson() {
  if (sharded_ != nullptr) return sharded_->ObsMetricsJson();
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->MetricsJson();
}

std::string ClusterSimulation::ObsTraceJson() {
  if (sharded_ != nullptr) return sharded_->ObsTraceJson();
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->TraceJson();
}

std::string ClusterSimulation::ObsSloJson() {
  if (sharded_ != nullptr) return sharded_->ObsSloJson();
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->SloJson();
}

std::string DisaggregatedRunReport::Summary() const {
  KvFormatter f;
  f.Kv("hosts", "%zu", hosts.size())
      .Kv("qps", "%.0f", aggregate_qps)
      .Kv("hit", "%.1f%%", mean_hit_rate * 100)
      .Kv("reads", "%llu", static_cast<unsigned long long>(sm_device_reads))
      .Kv("sf", "%llu", static_cast<unsigned long long>(io.singleflight_hits))
      .Kv("xhost", "%llu", static_cast<unsigned long long>(cross_host_hits))
      .Kv("dedup", "%.1fMiB", AsMiB(sm_logical_bytes - sm_unique_bytes))
      .Kv("fabric", "%.1fMiB(resp)", AsMiB(fabric.response_bytes))
      .Kv("fq", "%.0fus", fabric.queue_time.micros())
      .Kv("occ", "%.1f", io.BatchOccupancy())
      .Kv("drop", "%llu", static_cast<unsigned long long>(fabric.dropped))
      .Kv("part", "%llu", static_cast<unsigned long long>(fabric.partition_deferred))
      .Kv("ddl", "%llu", static_cast<unsigned long long>(io.deadline_expired))
      .Kv("hedge", "%llu/%llu", static_cast<unsigned long long>(io.hedges_won),
          static_cast<unsigned long long>(io.hedges_issued))
      .Kv("deg", "%llu", static_cast<unsigned long long>(queries_degraded))
      .Kv("rowsf", "%llu", static_cast<unsigned long long>(rows_failed))
      .Kv("rot", "%llu", static_cast<unsigned long long>(blocks_corrupt))
      .Kv("rrd", "%llu", static_cast<unsigned long long>(read_repairs))
      .Kv("rep", "%llu", static_cast<unsigned long long>(replica_reads))
      .Kv("xrep", "%llu", static_cast<unsigned long long>(extents_replicated));
  return f.str();
}

}  // namespace sdm
