// Fleet power / capacity arithmetic (paper §2.3 Eq. 5-7, Tables 8/9/10/11).
//
// The paper's headline numbers are fleet-level: measured QPS-per-host at
// the latency SLA, multiplied out to the hosts (and watts) a region needs.
// These helpers keep that arithmetic explicit and auditable.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sdm {

/// One serving configuration for a model with a fleet-wide QPS demand.
struct FleetScenario {
  std::string name;
  double total_qps = 0;      ///< region-level demand
  double qps_per_host = 0;   ///< measured at the latency SLA (Eq. 5)
  double host_power = 1.0;   ///< normalized per-host power
  /// Scale-out helpers (e.g. HW-S hosts serving user embeddings remotely):
  /// helpers needed per main host and their power.
  double helpers_per_host = 0;
  double helper_power = 0;
};

struct FleetEstimate {
  double main_hosts = 0;
  double helper_hosts = 0;
  double total_power = 0;
  double power_per_kqps = 0;

  [[nodiscard]] std::string Summary() const;
};

/// Eq. 7: Resources = QPS_total / QPS_host, plus helper fan-out and power.
[[nodiscard]] FleetEstimate EvaluateFleet(const FleetScenario& s);

/// Relative power saving of `b` versus `a` (positive = b cheaper).
[[nodiscard]] double PowerSaving(const FleetEstimate& a, const FleetEstimate& b);

// ---------------------------------------------------------------------------
// Multi-tenancy (Table 11).
// ---------------------------------------------------------------------------

struct MultiTenancyScenario {
  double base_utilization = 0.63;  ///< fleet util without SDM (memory-bound)
  double sdm_utilization = 0.90;   ///< with SM capacity unlocking co-location
  double base_host_power = 1.0;
  double sdm_host_power = 1.01;    ///< + SSDs
};

struct MultiTenancyEstimate {
  /// Fleet power to serve the same work, relative to the base fleet.
  double fleet_power_ratio = 1.0;
  double perf_per_watt_gain = 0.0;
};

[[nodiscard]] MultiTenancyEstimate EvaluateMultiTenancy(const MultiTenancyScenario& s);

// ---------------------------------------------------------------------------
// SM device sizing (Table 10).
// ---------------------------------------------------------------------------

struct SsdSizingInput {
  double qps = 0;              ///< per-host QPS target
  double user_tables = 0;      ///< tables served from SM
  double avg_pooling = 0;      ///< lookups per table per query
  double cache_hit_rate = 0;   ///< SM cache hit rate (misses reach devices)
  double per_ssd_iops = 4e6;   ///< device capability (Optane: 4M)
  /// Headroom: devices run below their ceiling to hold latency (<=1).
  double target_device_utilization = 1.0;
};

struct SsdSizingResult {
  double required_iops = 0;  ///< post-cache IOPS demand (Eq. 8 * miss rate)
  int ssds_needed = 0;

  [[nodiscard]] std::string Summary() const;
};

[[nodiscard]] SsdSizingResult ComputeSsdRequirement(const SsdSizingInput& in);

}  // namespace sdm
