#include "serving/power_model.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sdm {

FleetEstimate EvaluateFleet(const FleetScenario& s) {
  assert(s.qps_per_host > 0);
  FleetEstimate e;
  e.main_hosts = std::ceil(s.total_qps / s.qps_per_host);
  e.helper_hosts = std::ceil(e.main_hosts * s.helpers_per_host);
  e.total_power = e.main_hosts * s.host_power + e.helper_hosts * s.helper_power;
  e.power_per_kqps = s.total_qps > 0 ? e.total_power / (s.total_qps / 1000.0) : 0;
  return e;
}

double PowerSaving(const FleetEstimate& a, const FleetEstimate& b) {
  if (a.total_power <= 0) return 0;
  return 1.0 - b.total_power / a.total_power;
}

std::string FleetEstimate::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "hosts=%.0f(+%.0f helpers) power=%.1f (%.3f/kQPS)",
                main_hosts, helper_hosts, total_power, power_per_kqps);
  return buf;
}

MultiTenancyEstimate EvaluateMultiTenancy(const MultiTenancyScenario& s) {
  assert(s.base_utilization > 0 && s.sdm_utilization > 0);
  MultiTenancyEstimate e;
  // Same aggregate work; hosts needed scale inversely with utilization.
  const double base_hosts = 1.0 / s.base_utilization;
  const double sdm_hosts = 1.0 / s.sdm_utilization;
  e.fleet_power_ratio =
      (sdm_hosts * s.sdm_host_power) / (base_hosts * s.base_host_power);
  e.perf_per_watt_gain = 1.0 / e.fleet_power_ratio - 1.0;
  return e;
}

SsdSizingResult ComputeSsdRequirement(const SsdSizingInput& in) {
  assert(in.per_ssd_iops > 0);
  assert(in.target_device_utilization > 0 && in.target_device_utilization <= 1.0);
  SsdSizingResult r;
  // Eq. 8: IOPS = QPS * sum(p_i) over SM tables, then the cache absorbs
  // hit_rate of it.
  const double raw = in.qps * in.user_tables * in.avg_pooling;
  r.required_iops = raw * (1.0 - in.cache_hit_rate);
  const double effective_per_ssd = in.per_ssd_iops * in.target_device_utilization;
  r.ssds_needed = static_cast<int>(std::ceil(r.required_iops / effective_per_ssd));
  return r;
}

std::string SsdSizingResult::Summary() const {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "required=%.1f MIOPS -> %d SSDs", required_iops / 1e6,
                ssds_needed);
  return buf;
}

}  // namespace sdm
