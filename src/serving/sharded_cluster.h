// ShardedClusterRuntime — the disaggregated cluster on the multi-threaded
// conservative runtime (src/common/sharded_runtime.h).
//
// Single-loop RunDisaggregated interleaves every host on ONE EventLoop;
// correct, but serial. This runtime partitions the cluster into logical
// processes — LP 0 is the DEVICE shard (the shared SM stack), LP 1+i is
// host i (its SdmStore + InferenceEngine + workload + per-shard
// BufferArena) — and runs them on num_shards worker threads. The only
// cross-LP interaction is the fabric hop, so the conservative lookahead is
// the one-way fabric latency; sharded mode therefore REQUIRES a non-instant
// fabric (fabric_latency > 0). Zero-latency-fabric experiments (the
// byte-identity anchors) keep num_shards = 1.
//
// What moves where, versus the single-loop path:
//   - BatchScheduler / DirectIoReader / IoEngine / BufferArena move
//     HOST-side (a remote SLICE of SharedDeviceService per host): batching
//     and coalescing decisions are per-host state, so they can run
//     unsynchronized within a window.
//   - The device shard keeps the NvmeDevices and grows a
//     ShardDeviceEndpoint providing the device-side invariants the shared
//     engine used to: the per-device queue-depth bound across ALL hosts and
//     cross-host single-flight (exact-span joins).
//   - Fabric timing splits by direction: each host owns per-port REQUEST
//     links (doorbells), the device shard owns per-(host, port) RESPONSE
//     links (payloads) — each side owns the direction it transmits on, so
//     busy/queue state stays shard-local. Note the divergence from the
//     single-loop path's ONE link per device shared by every host: under
//     concurrent load per-host ports contend less, which is a (documented)
//     modeling difference, not an approximation of the same model.
//
// Determinism: results are bit-identical for every num_shards >= 2 (worker
// count never affects the message merge order — see ShardedRuntime), and
// AGGREGATE-identical to the single-loop path whenever hosts' IOs do not
// overlap in time (the serial-load oracle the tests pin). Arrival streams,
// router draws, and placement replicate the single-loop seed derivations
// exactly; arrivals are precomputed sequentially pre-run in the single
// loop's (time, seq) execution order, then scheduled onto target host LPs.
//
// Faults (src/fault): device windows (error bursts, fail-slow, stalls) run
// on the device shard's injector; partition windows also run on per-host
// injector CLONES for the request links — deferral is a deterministic plan
// scan, so clones see identical heal times. Fabric-DROP windows draw
// per-transfer RNG on whichever link the transfer crosses, which cannot be
// replicated across shards — InstallFaultPlan rejects them (use
// num_shards = 1).
#pragma once

#include <memory>
#include <vector>

#include "common/sharded_runtime.h"
#include "fabric/fabric_link.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "io/remote_channel.h"
#include "serving/arrival_loop.h"
#include "serving/cluster.h"
#include "tenant/shard_device_endpoint.h"

namespace sdm {

class ShardedClusterRuntime {
 public:
  /// `num_shards` worker threads (>= 2; 1 means "use ClusterSimulation's
  /// single loop" and never reaches this class).
  ShardedClusterRuntime(size_t num_hosts, const HostSimConfig& host_config,
                        RoutingPolicy policy, size_t num_shards);

  ShardedClusterRuntime(const ShardedClusterRuntime&) = delete;
  ShardedClusterRuntime& operator=(const ShardedClusterRuntime&) = delete;

  /// Loads the model on every host shard (sequential, pre-threads).
  /// Placement delegates to the device stack's extent registry, so
  /// cross-host dedup is byte-identical to the single-loop path. Rejects
  /// configs the sharded runtime cannot run bit-deterministically
  /// (instant fabric).
  Status LoadModel(const ModelConfig& model);

  /// Installs a scripted fault plan: device windows on the device shard,
  /// partition windows additionally on per-host injector clones. Rejects
  /// plans containing fabric-drop windows (see file header). Replaces any
  /// previously installed plan.
  Status InstallFaultPlan(const FaultPlan& plan, uint64_t seed);

  /// The sharded counterpart of ClusterSimulation::RunDisaggregated: same
  /// arrival construction, same report assembly. Callable repeatedly
  /// (warmup then measure); caches stay warm, clocks carry over.
  [[nodiscard]] DisaggregatedRunReport Run(double total_qps, uint64_t num_queries);

  [[nodiscard]] size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] size_t num_shards() const { return num_shards_; }
  [[nodiscard]] SdmStore& host_store(size_t i) { return *hosts_[i].store; }
  /// The device shard's stack (test/report introspection only off-run).
  [[nodiscard]] SharedDeviceService& device_stack() { return *stack_; }
  [[nodiscard]] ShardDeviceEndpoint& endpoint() { return *endpoint_; }
  /// Runtime introspection: windows, cross-shard messages, event counts.
  [[nodiscard]] const ShardedRuntime& runtime() const { return runtime_; }

  /// Observability exports (src/obs): one Observability per LP (the device
  /// shard records under "svc/", host i under "host<i>/"), merged at export
  /// time — the documents are bit-identical for every worker count because
  /// recording is LP-local and the merge orders by name / virtual time, not
  /// by thread interleaving. "{}" when tuning.obs is off.
  [[nodiscard]] std::string ObsMetricsJson();
  [[nodiscard]] std::string ObsTraceJson();
  [[nodiscard]] std::string ObsSloJson();

 private:
  static constexpr size_t kDeviceLp = 0;

  /// Host i's RemoteDeviceChannel: forwards engine doorbells into the
  /// cluster's fabric + mailbox plumbing.
  class HostChannel : public RemoteDeviceChannel {
   public:
    HostChannel(ShardedClusterRuntime* cluster, size_t host)
        : cluster_(cluster), host_(host) {}
    void SubmitDoorbell(size_t port, std::vector<RemoteReadOp> ops) override {
      cluster_->Doorbell(host_, port, std::move(ops));
    }

   private:
    ShardedClusterRuntime* cluster_;
    size_t host_;
  };

  struct HostShard {
    TenantId stack_id = 0;  ///< identity on the device stack (dedup domain)
    std::unique_ptr<HostChannel> channel;
    std::vector<std::unique_ptr<FabricLink>> request_links;  ///< per port
    std::unique_ptr<FaultInjector> injector;  ///< partition-defer clone
    std::unique_ptr<SharedDeviceService> slice;
    std::unique_ptr<SdmStore> store;
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<QueryGenerator> workload;
    ArrivalStats stats;  ///< current run's serving stats (this LP only)
  };

  /// Runs on host `host`'s loop: pays the request-direction fabric timing
  /// and ships the doorbell to the device shard.
  void Doorbell(size_t host, size_t port, std::vector<RemoteReadOp> ops);

  [[nodiscard]] size_t RouteTarget(size_t source, UserId user) const;
  [[nodiscard]] CrossRequestIoStats SliceIoStats() const;
  [[nodiscard]] FabricLinkStats FabricStats() const;

  HostSimConfig base_config_;
  StickyRouter router_;
  size_t num_shards_;
  ShardedRuntime runtime_;
  /// Per-LP observability (index = LP id; empty when obs is off). Declared
  /// before the stacks so the recorders outlive every instrumented
  /// component.
  std::vector<std::unique_ptr<Observability>> obs_;
  std::unique_ptr<SharedDeviceService> stack_;  ///< device shard (LP 0)
  std::unique_ptr<ShardDeviceEndpoint> endpoint_;
  std::unique_ptr<FaultInjector> device_injector_;
  /// Response-direction links, device-side: [host * ports + port].
  std::vector<std::unique_ptr<FabricLink>> response_links_;
  std::vector<HostShard> hosts_;
  bool loaded_ = false;
};

}  // namespace sdm
