// Fleet-level composition: sticky routing, scale-out, multi-tenancy.
//
// - StickyRouter / ClusterSimulation: queries route user->host by hash, so
//   each host sees a stable user sub-population and higher per-host
//   temporal locality than the global trace (paper Fig. 4c). Random
//   routing is available as the baseline.
// - ScaleOutModel: analytic latency/power for the (Lui et al.) sharded
//   alternative SDM competes against in §5.2.
// - MultiTenantHost (src/tenant/multi_tenant_host.h, re-exported here):
//   co-locates several models on one simulated host — as isolated stores,
//   or as real shards on a SharedDeviceService — to exercise the §5.3
//   capacity argument.
#pragma once

#include <memory>
#include <vector>

#include "serving/host.h"
#include "serving/power_model.h"
#include "tenant/multi_tenant_host.h"

namespace sdm {

enum class RoutingPolicy : uint8_t { kUserSticky, kRandom };

/// Maps users to hosts. Sticky = consistent hash; random = per-query draw.
class StickyRouter {
 public:
  StickyRouter(size_t num_hosts, RoutingPolicy policy, uint64_t seed);

  /// Sticky routing is a pure hash of the user id, so routing a query does
  /// not mutate observable router state; only the kRandom baseline draws
  /// from the (mutable) RNG.
  [[nodiscard]] size_t Route(UserId user) const;

  [[nodiscard]] RoutingPolicy policy() const { return policy_; }

 private:
  size_t num_hosts_;
  RoutingPolicy policy_;
  mutable Rng rng_;  ///< used by kRandom only; never drawn on the hash path
};

struct ClusterRunReport {
  std::vector<HostRunReport> hosts;
  double mean_hit_rate = 0;
  double aggregate_qps = 0;
};

/// A small fleet of identical hosts used to demonstrate routing effects:
/// every host loads the same model; a global user stream is partitioned by
/// the router; each host then serves its share.
class ClusterSimulation {
 public:
  ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                    RoutingPolicy policy);

  Status LoadModel(const ModelConfig& model);

  /// Routes `num_queries` global arrivals and runs each host at its share
  /// of `total_qps`.
  [[nodiscard]] ClusterRunReport Run(double total_qps, uint64_t num_queries);

  [[nodiscard]] HostSimulation& host(size_t i) { return *hosts_[i]; }
  [[nodiscard]] size_t size() const { return hosts_.size(); }

 private:
  std::vector<std::unique_ptr<HostSimulation>> hosts_;
  StickyRouter router_;
};

// ---------------------------------------------------------------------------
// Scale-out (the alternative SDM displaces, §5.2).
// ---------------------------------------------------------------------------

struct ScaleOutModel {
  /// Main hosts per helper (paper: one HW-S serves ~5 HW-AN).
  double mains_per_helper = 5.0;
  /// Network round trip for a remote embedding fetch.
  SimDuration network_rtt = Micros(100);
  /// Helper-side service time per query's user-embedding work.
  SimDuration helper_service = Micros(200);

  /// Added latency on the user path versus local DRAM.
  [[nodiscard]] SimDuration UserPathLatency() const { return network_rtt + helper_service; }

  /// Fleet scenario for mains at `qps_per_host` with helper overhead.
  [[nodiscard]] FleetScenario Fleet(const std::string& name, double total_qps,
                                    double qps_per_host, double main_power,
                                    double helper_power) const {
    FleetScenario s;
    s.name = name;
    s.total_qps = total_qps;
    s.qps_per_host = qps_per_host;
    s.host_power = main_power;
    s.helpers_per_host = 1.0 / mains_per_helper;
    s.helper_power = helper_power;
    return s;
  }
};

}  // namespace sdm
