// Fleet-level composition: sticky routing, scale-out, multi-tenancy,
// disaggregated SM.
//
// - StickyRouter / ClusterSimulation: queries route user->host by hash, so
//   each host sees a stable user sub-population and higher per-host
//   temporal locality than the global trace (paper Fig. 4c). Random
//   routing is available as the baseline.
// - Disaggregated mode (src/fabric): instead of per-host private SM, all
//   hosts' stores attach to ONE FabricAttachedService — a shared device
//   stack behind a configurable fabric hop — and RunDisaggregated
//   interleaves every host's arrivals on one EventLoop so cross-HOST
//   single-flight of shared hot blocks is actually exercised (the
//   measured counterpart of the analytic ScaleOutModel below).
// - ScaleOutModel: analytic latency/power for the (Lui et al.) sharded
//   alternative SDM competes against in §5.2.
// - MultiTenantHost (src/tenant/multi_tenant_host.h, re-exported here):
//   co-locates several models on one simulated host — as isolated stores,
//   or as real shards on a SharedDeviceService — to exercise the §5.3
//   capacity argument.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric_attached_service.h"
#include "serving/host.h"
#include "serving/power_model.h"
#include "tenant/multi_tenant_host.h"

namespace sdm {

enum class RoutingPolicy : uint8_t {
  kUserSticky,  ///< consistent hash of the user id (Fig. 4c affinity)
  kRandom,      ///< per-query draw (the no-affinity baseline)
  /// No redistribution: an arrival is served where it lands (round-robin
  /// partition in isolated Run; the drawing frontend in RunDisaggregated).
  /// This is the shared-nothing baseline sticky routing is measured
  /// against, and — with an instant fabric — the configuration that is
  /// byte-identical to MultiTenantHost::RunShared.
  kLocal,
};

/// Maps users to hosts. Sticky = consistent hash; random = per-query draw.
class StickyRouter {
 public:
  StickyRouter(size_t num_hosts, RoutingPolicy policy, uint64_t seed);

  /// Sticky routing is a pure hash of the user id, so routing a query does
  /// not mutate observable router state; only the kRandom baseline draws
  /// from the (mutable) RNG.
  [[nodiscard]] size_t Route(UserId user) const;

  [[nodiscard]] RoutingPolicy policy() const { return policy_; }

 private:
  size_t num_hosts_;
  RoutingPolicy policy_;
  mutable Rng rng_;  ///< used by kRandom only; never drawn on the hash path
};

struct ClusterRunReport {
  std::vector<HostRunReport> hosts;
  /// Mean row-cache hit rate weighted by each host's served queries (idle
  /// hosts contribute nothing instead of deflating the mean).
  double mean_hit_rate = 0;
  double aggregate_qps = 0;
};

/// Builds the cluster's hosts as shards of one fabric-attached device
/// stack instead of per-host private SM (see file header). Fabric shape
/// (latency / bandwidth / queueing) comes from the host config's
/// TuningConfig fabric knobs.
struct DisaggregatedConfig {
  bool enabled = false;
  /// Worker threads for the sharded parallel runtime
  /// (src/serving/sharded_cluster.h): each host shard and the device shard
  /// become logical processes with private EventLoops, synchronized by
  /// conservative windows of one fabric latency. 0/1 keeps today's
  /// single-loop path (byte-identical, required for instant fabrics);
  /// >= 2 requires fabric_latency > 0 and produces results that are
  /// bit-identical across every num_shards >= 2.
  size_t num_shards = 1;
};

/// One host's slice of a disaggregated run.
struct DisaggregatedHostReport {
  HostRunReport run;
  /// Per-HOST fair-share ledger of the shared device, this run only: lane
  /// bus bytes owned, and single-flight hits served by reads OTHER hosts
  /// paid for (`share.cross_tenant_hits` reads as cross-HOST hits).
  TenantIoShare share;
  SimDuration throttle_queue_time;  ///< virtual time queued for IO slots
};

struct DisaggregatedRunReport {
  std::vector<DisaggregatedHostReport> hosts;
  double mean_hit_rate = 0;  ///< served-query weighted, like ClusterRunReport
  double aggregate_qps = 0;
  // ---- Shared device stack, this run only ----
  uint64_t sm_device_reads = 0;  ///< physical device reads
  CrossRequestIoStats io;        ///< scheduler effectiveness
  uint64_t cross_host_hits = 0;  ///< runs served by another HOST's read
  Bytes cross_host_bytes_saved = 0;
  // ---- Model bytes (replicas of one model dedup to one extent set) ----
  Bytes sm_logical_bytes = 0;  ///< sum of host footprints
  Bytes sm_unique_bytes = 0;   ///< device bytes after cross-host dedup
  // ---- Fabric traffic, this run only ----
  FabricLinkStats fabric;
  // ---- Robustness (src/fault), this run only ----
  uint64_t queries_degraded = 0;  ///< completed queries with zero-filled rows
  uint64_t rows_failed = 0;       ///< zero-filled rows across the cluster
  // ---- Self-healing storage (src/fault), this run only ----
  uint64_t blocks_corrupt = 0;      ///< 4KB blocks failing their checksum
  uint64_t replica_reads = 0;       ///< demand reads failed over to a replica
  uint64_t read_repairs = 0;        ///< terminally-failed reads served from a replica
  uint64_t extents_replicated = 0;  ///< extents re-replicated off sick endpoints

  [[nodiscard]] std::string Summary() const;
};

/// A small fleet of identical hosts used to demonstrate routing effects:
/// every host loads the same model; a global user stream is partitioned by
/// the router; each host then serves its share.
///
/// Two SM attachments:
///  - isolated (default): each host is a full HostSimulation with private
///    devices; Run() replays the routed stream per host (exact — hosts
///    share nothing).
///  - disaggregated (DisaggregatedConfig::enabled): hosts are real shards
///    — SdmStore + InferenceEngine + workload on ONE EventLoop — attached
///    to one FabricAttachedService, and RunDisaggregated interleaves all
///    hosts' Poisson arrivals with the router deciding which host's engine
///    each arrival enters. Seeds derive exactly like MultiTenantHost's
///    shared mode, so an instant fabric with kLocal routing is
///    byte-identical to RunShared with the same stores.
class ShardedClusterRuntime;

class ClusterSimulation {
 public:
  ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                    RoutingPolicy policy);
  ClusterSimulation(size_t num_hosts, const HostSimConfig& host_config,
                    RoutingPolicy policy, const DisaggregatedConfig& disaggregated);
  ~ClusterSimulation();

  Status LoadModel(const ModelConfig& model);

  /// Routes `num_queries` global arrivals and runs each host at its share
  /// of `total_qps`. Isolated mode only.
  [[nodiscard]] ClusterRunReport Run(double total_qps, uint64_t num_queries);

  /// Interleaves every host's open-loop Poisson arrivals (total_qps and
  /// num_queries split evenly) on the common loop against the shared
  /// fabric-attached device stack. Disaggregated mode only.
  [[nodiscard]] DisaggregatedRunReport RunDisaggregated(double total_qps,
                                                        uint64_t num_queries);

  [[nodiscard]] bool disaggregated() const {
    return fabric_ != nullptr || sharded_ != nullptr;
  }
  [[nodiscard]] size_t size() const;
  /// Isolated-mode host (undefined in disaggregated mode).
  [[nodiscard]] HostSimulation& host(size_t i) { return *hosts_[i]; }
  /// Disaggregated-mode accessors (null/undefined in isolated mode).
  /// fabric_service() is the SINGLE-LOOP stack — null when the sharded
  /// runtime is active (use sharded_runtime() there).
  [[nodiscard]] FabricAttachedService* fabric_service() { return fabric_.get(); }
  [[nodiscard]] SdmStore& host_store(size_t i);
  /// The parallel runtime behind num_shards >= 2 (null otherwise).
  [[nodiscard]] ShardedClusterRuntime* sharded_runtime() { return sharded_.get(); }

  /// Observability exports (src/obs): non-empty iff tuning.obs.enabled().
  /// Disaggregated modes export the whole cluster — the sharded runtime
  /// merges its per-LP buffers into documents bit-identical across worker
  /// counts. Isolated mode returns "{}": each host there owns a private
  /// Observability (use host(i).ObsMetricsJson()).
  [[nodiscard]] std::string ObsMetricsJson();
  [[nodiscard]] std::string ObsTraceJson();
  [[nodiscard]] std::string ObsSloJson();

 private:
  struct DisaggregatedHost {  // a host shard on the common loop
    TenantId id = 0;  ///< host identity on the fabric service's ledger
    std::unique_ptr<SdmStore> store;
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<QueryGenerator> workload;
  };

  /// Serving host of arrival `i` carrying `user` (kLocal short-circuits
  /// the router: arrivals stay where they land).
  [[nodiscard]] size_t RouteTarget(size_t source, UserId user) const;

  HostSimConfig base_config_;
  std::vector<std::unique_ptr<HostSimulation>> hosts_;  ///< isolated mode
  StickyRouter router_;
  // ---- Disaggregated mode (src/fabric) ----
  EventLoop dloop_;  ///< the one loop every host shard runs on
  std::unique_ptr<Observability> obs_;  ///< single-loop mode; outlives the stacks
  std::unique_ptr<FabricAttachedService> fabric_;
  std::vector<DisaggregatedHost> dhosts_;
  // ---- Sharded parallel mode (src/serving/sharded_cluster.h) ----
  std::unique_ptr<ShardedClusterRuntime> sharded_;
};

// ---------------------------------------------------------------------------
// Scale-out (the alternative SDM displaces, §5.2).
// ---------------------------------------------------------------------------

struct ScaleOutModel {
  /// Main hosts per helper (paper: one HW-S serves ~5 HW-AN).
  double mains_per_helper = 5.0;
  /// Network round trip for a remote embedding fetch.
  SimDuration network_rtt = Micros(100);
  /// Helper-side service time per query's user-embedding work.
  SimDuration helper_service = Micros(200);

  /// Added latency on the user path versus local DRAM.
  [[nodiscard]] SimDuration UserPathLatency() const { return network_rtt + helper_service; }

  /// Fleet scenario for mains at `qps_per_host` with helper overhead.
  [[nodiscard]] FleetScenario Fleet(const std::string& name, double total_qps,
                                    double qps_per_host, double main_power,
                                    double helper_power) const {
    FleetScenario s;
    s.name = name;
    s.total_qps = total_qps;
    s.qps_per_host = qps_per_host;
    s.host_power = main_power;
    s.helpers_per_host = 1.0 / mains_per_helper;
    s.helper_power = helper_power;
    return s;
  }
};

}  // namespace sdm
