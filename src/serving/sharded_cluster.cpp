#include "serving/sharded_cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "common/rng.h"
#include "core/model_loader.h"
#include "fault/replication_manager.h"

namespace sdm {

namespace {

/// Must match cluster.cpp's Mix64 bit-for-bit: the sharded path replays the
/// single-loop path's seed derivations (host workload/store/arrival seeds)
/// so the two modes serve identical query streams.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 64B NVMe SQE on the request direction — same constant the IoEngine
/// fabric path uses (io_engine.cpp).
constexpr Bytes kFabricSqeBytes = 64;

}  // namespace

ShardedClusterRuntime::ShardedClusterRuntime(size_t num_hosts,
                                             const HostSimConfig& host_config,
                                             RoutingPolicy policy, size_t num_shards)
    : base_config_(host_config),
      router_(num_hosts, policy, host_config.seed ^ 0xc1u),
      num_shards_(num_shards),
      runtime_(num_shards) {
  assert(num_hosts >= 1);
  assert(num_shards >= 2);

  const size_t device_lp = runtime_.AddProcess();
  assert(device_lp == kDeviceLp);
  (void)device_lp;

  if (base_config_.tuning.obs.enabled()) {
    // One instance per LP so recording never crosses a thread boundary;
    // Merged*Json folds them back into one document at export time.
    obs_.resize(1 + num_hosts);
    for (auto& o : obs_) o = std::make_unique<Observability>(base_config_.tuning.obs);
  }

  // Device stack: configured exactly like the single-loop fabric service's
  // (same specs, tuning, seed — so NvmeDevice seeds match bit-for-bit).
  SharedDeviceConfig dcfg;
  for (const auto& ssd : base_config_.host.ssds) {
    dcfg.sm_specs.push_back(ssd);
    dcfg.sm_backing_bytes.push_back(base_config_.sm_backing_per_device);
  }
  dcfg.tuning = base_config_.tuning;
  dcfg.seed = base_config_.seed;
  if (!obs_.empty()) {
    dcfg.obs = obs_[kDeviceLp].get();
    dcfg.obs_prefix = "svc/";
  }
  stack_ = std::make_unique<SharedDeviceService>(std::move(dcfg),
                                                 &runtime_.loop(kDeviceLp));
  endpoint_ = std::make_unique<ShardDeviceEndpoint>(stack_.get(), num_hosts);

  FabricLinkConfig lcfg;
  lcfg.latency = base_config_.tuning.fabric_latency;
  lcfg.bandwidth_bytes_per_sec = base_config_.tuning.fabric_bandwidth_bytes_per_sec;
  lcfg.queueing = base_config_.tuning.fabric_queueing;

  const size_t ports = stack_->device_count();
  hosts_.resize(num_hosts);
  response_links_.reserve(num_hosts * ports);
  for (size_t i = 0; i < num_hosts; ++i) {
    HostShard& h = hosts_[i];
    const size_t host_lp = runtime_.AddProcess();
    assert(host_lp == 1 + i);

    char name[32];
    std::snprintf(name, sizeof(name), "host-%zu", i);
    h.stack_id = stack_->RegisterTenant(name, TenantClass::kForeground);
    h.channel = std::make_unique<HostChannel>(this, i);

    // Request direction lives host-side, response direction device-side:
    // each shard owns the busy/queue state of the direction it transmits
    // on, and arrivals cross shards through the runtime's mailboxes.
    for (size_t p = 0; p < ports; ++p) {
      auto req = std::make_unique<FabricLink>(lcfg, &runtime_.loop(host_lp));
      req->set_remote_delivery([this, host_lp](SimTime at, EventLoop::Callback cb) {
        runtime_.Post(host_lp, kDeviceLp, at, std::move(cb));
      });
      if (!obs_.empty()) {
        // Each direction records on the LP that transmits on it.
        req->set_obs(obs_[host_lp].get(),
                     "host" + std::to_string(i) + "/dev" + std::to_string(p) + "/");
      }
      h.request_links.push_back(std::move(req));

      auto resp = std::make_unique<FabricLink>(lcfg, &runtime_.loop(kDeviceLp));
      resp->set_remote_delivery([this, host_lp](SimTime at, EventLoop::Callback cb) {
        runtime_.Post(kDeviceLp, host_lp, at, std::move(cb));
      });
      if (!obs_.empty()) {
        resp->set_obs(obs_[kDeviceLp].get(), "svc/host" + std::to_string(i) +
                                                 "/dev" + std::to_string(p) + "/");
      }
      response_links_.push_back(std::move(resp));
    }
  }
}

Status ShardedClusterRuntime::LoadModel(const ModelConfig& model) {
  if (Status s = base_config_.tuning.ValidateForDisaggregated(); !s.ok()) return s;
  if (base_config_.tuning.fabric_latency <= SimDuration(0)) {
    return FailedPreconditionError(
        "sharded disaggregated mode needs fabric_latency > 0: the one-way "
        "latency is the conservative lookahead (use num_shards=1 for "
        "instant-fabric runs)");
  }
  if (stack_->device_count() == 0) {
    return FailedPreconditionError("disaggregated cluster needs a host spec with SSDs");
  }
  if (loaded_) return FailedPreconditionError("model already loaded");

  for (size_t i = 0; i < hosts_.size(); ++i) {
    HostShard& h = hosts_[i];

    // Host-side slice of the device service: per-host engines, readers,
    // schedulers, throttle, and BufferArena; doorbells ride h.channel.
    SharedDeviceConfig slice_cfg;
    slice_cfg.tuning = base_config_.tuning;
    slice_cfg.seed = base_config_.seed ^ Mix64(i + 0x51ce);
    slice_cfg.remote.stack = stack_.get();
    slice_cfg.remote.channel = h.channel.get();
    slice_cfg.remote.tenant = h.stack_id;
    if (!obs_.empty()) {
      slice_cfg.obs = obs_[1 + i].get();
      slice_cfg.obs_prefix = "host" + std::to_string(i) + "/";
    }
    h.slice = std::make_unique<SharedDeviceService>(std::move(slice_cfg),
                                                    &runtime_.loop(1 + i));
    const TenantId local_id =
        h.slice->RegisterTenant(stack_->tenant_name(h.stack_id),
                                TenantClass::kForeground);

    // Store / loader / engine / workload: the single-loop path's exact
    // construction and seed derivations (cluster.cpp), per host LP.
    SdmStoreConfig scfg;
    scfg.fm_capacity = base_config_.fm_capacity;
    scfg.tuning = base_config_.tuning;
    scfg.seed = base_config_.seed ^ Mix64(i + 0x7e0a);
    scfg.shared_device = h.slice.get();
    scfg.tenant_id = local_id;
    scfg.tenant_class = TenantClass::kForeground;
    if (!obs_.empty()) {
      scfg.obs = obs_[1 + i].get();
      scfg.obs_prefix = "host" + std::to_string(i) + "/";
    }
    h.store = std::make_unique<SdmStore>(scfg, &runtime_.loop(1 + i));

    auto report = ModelLoader::Load(model, base_config_.loader, h.store.get());
    if (!report.ok()) return report.status();

    InferenceConfig icfg = base_config_.inference;
    icfg.accelerator = base_config_.host.accelerator;
    icfg.dense.flops_per_sec = base_config_.host.dense_flops;
    if (icfg.max_concurrent_queries <= 0) {
      icfg.max_concurrent_queries = base_config_.host.cores();
    }
    h.engine = std::make_unique<InferenceEngine>(h.store.get(), model, icfg);

    WorkloadConfig wcfg = base_config_.workload;
    wcfg.seed = base_config_.workload.seed ^ Mix64(0x7e0a + i);
    h.workload = std::make_unique<QueryGenerator>(model, wcfg);

    // Self-healing control plane: health is observed HOST-side (the slice's
    // monitor scores this host's completions), but re-replication runs on
    // the device shard, which owns the media. A sickness edge crosses the
    // fabric as a control message — one lookahead-respecting post, like any
    // doorbell.
    if (base_config_.tuning.enable_replication) {
      const size_t host_lp = 1 + i;
      h.slice->health().SetSickTransitionListener([this, host_lp](size_t endpoint) {
        runtime_.Post(host_lp, kDeviceLp,
                      runtime_.loop(host_lp).Now() + base_config_.tuning.fabric_latency,
                      [this, endpoint] {
                        stack_->replication()->OnEndpointSick(endpoint);
                      });
      });
    }
  }

  // Published replica routes propagate back to every host slice the same
  // way (device LP -> host LPs), so failover decisions stay shard-local.
  if (ReplicationManager* repl = stack_->replication(); repl != nullptr) {
    repl->SetPublishHook([this](uint64_t id, SharedDeviceService::ReplicaLocation loc) {
      for (size_t i = 0; i < hosts_.size(); ++i) {
        runtime_.Post(kDeviceLp, 1 + i,
                      runtime_.loop(kDeviceLp).Now() + base_config_.tuning.fabric_latency,
                      [this, i, id, loc] { hosts_[i].slice->AddReplicaRoute(id, loc); });
      }
    });
  }
  loaded_ = true;
  return Status::Ok();
}

Status ShardedClusterRuntime::InstallFaultPlan(const FaultPlan& plan, uint64_t seed) {
  for (const FaultWindow& w : plan.windows) {
    if (w.kind == FaultKind::kFabricDrop) {
      return FailedPreconditionError(
          "fabric-drop windows draw per-transfer RNG on per-shard links and "
          "cannot replay deterministically across shard counts; run drop "
          "experiments with num_shards=1");
    }
  }
  // Device windows interpret on the device shard's clock; every host gets a
  // CLONE for its request links' partition deferral — a deterministic plan
  // scan, so clones agree on heal times without sharing state.
  device_injector_ = std::make_unique<FaultInjector>(plan, &runtime_.loop(kDeviceLp), seed);
  stack_->InstallFaultInjector(device_injector_.get());
  const size_t ports = stack_->device_count();
  for (size_t i = 0; i < hosts_.size(); ++i) {
    for (size_t p = 0; p < ports; ++p) {
      response_links_[i * ports + p]->set_fault_injector(device_injector_.get(),
                                                         static_cast<int>(p));
    }
    hosts_[i].injector =
        std::make_unique<FaultInjector>(plan, &runtime_.loop(1 + i), seed);
    for (size_t p = 0; p < ports; ++p) {
      hosts_[i].request_links[p]->set_fault_injector(hosts_[i].injector.get(),
                                                     static_cast<int>(p));
    }
  }
  return Status::Ok();
}

void ShardedClusterRuntime::Doorbell(size_t host, size_t port,
                                     std::vector<RemoteReadOp> ops) {
  // On host `host`'s loop. Package the SQEs for the endpoint, then ring:
  // one request transfer carries the whole doorbell (64B per SQE), and its
  // delivery — posted cross-shard by the link's remote delivery hook —
  // lands on the device loop at arrival time.
  const size_t ports = stack_->device_count();
  std::vector<ShardDeviceEndpoint::Op> eops;
  eops.reserve(ops.size());
  for (RemoteReadOp& op : ops) {
    ShardDeviceEndpoint::Op e;
    e.offset = op.offset;
    e.length = op.length;
    e.sub_block = op.sub_block;
    e.payload_bytes = op.payload_bytes;
    e.host = host;
    // Runs on the DEVICE loop at completion: pay the response-direction
    // fabric timing and hand the payload back to the host shard. The
    // response transfer is byte-accounted even on error (empty payload),
    // like the single-loop WrapFabricCompletion path.
    e.respond = [this, link = response_links_[host * ports + port].get(),
                 payload_bytes = op.payload_bytes, oc = std::move(op.on_complete)](
                    Status status, std::vector<uint8_t> payload) mutable {
      link->Response(payload_bytes,
                     [oc = std::move(oc), status = std::move(status),
                      payload = std::move(payload)]() mutable {
                       oc(std::move(status), std::span<const uint8_t>(payload));
                     });
    };
    eops.push_back(std::move(e));
  }
  // Size the transfer BEFORE the call: argument evaluation order is
  // unspecified, and the lambda capture moves `eops` out.
  const Bytes doorbell_bytes = kFabricSqeBytes * static_cast<Bytes>(eops.size());
  hosts_[host].request_links[port]->Request(
      doorbell_bytes,
      [endpoint = endpoint_.get(), port, eops = std::move(eops)]() mutable {
        endpoint->OnDoorbell(port, std::move(eops));
      });
}

size_t ShardedClusterRuntime::RouteTarget(size_t source, UserId user) const {
  if (router_.policy() == RoutingPolicy::kLocal) return source % hosts_.size();
  return router_.Route(user);
}

CrossRequestIoStats ShardedClusterRuntime::SliceIoStats() const {
  // Scheduler effectiveness lives host-side in sharded mode — plus the
  // device stack's own schedulers, idle except for the self-healing layer's
  // re-replication copy chunks riding their background lanes (included so
  // the single-loop oracle sees the same flush/background totals).
  CrossRequestIoStats agg;
  auto add = [&agg](const CrossRequestIoStats& one) {
    agg.device_reads += one.device_reads;
    agg.cross_request_merges += one.cross_request_merges;
    agg.singleflight_hits += one.singleflight_hits;
    agg.singleflight_bytes_saved += one.singleflight_bytes_saved;
    agg.flushes += one.flushes;
    agg.prefetch_reads += one.prefetch_reads;
    agg.prefetch_dropped += one.prefetch_dropped;
    agg.prefetch_promoted += one.prefetch_promoted;
    agg.background_reads += one.background_reads;
    agg.background_parked += one.background_parked;
    agg.background_promoted += one.background_promoted;
    agg.deadline_expired += one.deadline_expired;
    agg.hedges_issued += one.hedges_issued;
    agg.hedges_won += one.hedges_won;
  };
  for (const HostShard& h : hosts_) {
    if (h.slice == nullptr) continue;
    add(h.slice->cross_request_io_stats());
  }
  add(stack_->cross_request_io_stats());
  return agg;
}

FabricLinkStats ShardedClusterRuntime::FabricStats() const {
  FabricLinkStats agg;
  auto add = [&agg](const FabricLinkStats& one) {
    agg.requests += one.requests;
    agg.responses += one.responses;
    agg.request_bytes += one.request_bytes;
    agg.response_bytes += one.response_bytes;
    agg.queue_time += one.queue_time;
    agg.dropped += one.dropped;
    agg.partition_deferred += one.partition_deferred;
  };
  for (const HostShard& h : hosts_) {
    for (const auto& link : h.request_links) add(link->stats());
  }
  for (const auto& link : response_links_) add(link->stats());
  return agg;
}

std::string ShardedClusterRuntime::ObsMetricsJson() {
  if (obs_.empty()) return "{}";
  std::vector<Observability*> all;
  all.reserve(obs_.size());
  for (auto& o : obs_) {
    o->Finalize();
    all.push_back(o.get());
  }
  return Observability::MergedMetricsJson(all);
}

std::string ShardedClusterRuntime::ObsTraceJson() {
  if (obs_.empty()) return "{}";
  std::vector<Observability*> all;
  all.reserve(obs_.size());
  for (auto& o : obs_) all.push_back(o.get());
  return Observability::MergedTraceJson(all);
}

std::string ShardedClusterRuntime::ObsSloJson() {
  if (obs_.empty()) return "{}";
  std::vector<Observability*> all;
  all.reserve(obs_.size());
  for (auto& o : obs_) {
    o->Finalize();
    all.push_back(o.get());
  }
  return Observability::MergedSloJson(all);
}

DisaggregatedRunReport ShardedClusterRuntime::Run(double total_qps,
                                                  uint64_t num_queries) {
  assert(total_qps > 0);
  DisaggregatedRunReport report;
  if (!loaded_) return report;
  const size_t n = hosts_.size();
  const double qps_each = total_qps / static_cast<double>(n);
  const uint64_t queries_each = num_queries / n;

  // ---- Per-run snapshots (counters are cumulative across runs) ----
  struct Snapshot {
    uint64_t cache_hits0 = 0;
    uint64_t cache_miss0 = 0;
    TenantIoShare share0;
    SimDuration queue_time0;
    uint64_t xhost_hits0 = 0;
    Bytes xhost_bytes0 = 0;
    uint64_t replica0 = 0;
    uint64_t repairs0 = 0;
  };
  std::vector<Snapshot> snaps(n);
  for (size_t i = 0; i < n; ++i) {
    if (DualRowCache* rc = hosts_[i].store->row_cache(); rc != nullptr) {
      snaps[i].cache_hits0 = rc->stats().hits;
      snaps[i].cache_miss0 = rc->stats().misses;
    }
    snaps[i].share0 = hosts_[i].slice->tenant_io_share(0);
    snaps[i].queue_time0 = hosts_[i].slice->throttle_queue_time(0);
    snaps[i].xhost_hits0 = endpoint_->cross_host_hits(i);
    snaps[i].xhost_bytes0 = endpoint_->cross_host_bytes_saved(i);
    snaps[i].replica0 =
        hosts_[i].engine->lookups().stats().CounterValue("replica_reads");
    snaps[i].repairs0 =
        hosts_[i].engine->lookups().stats().CounterValue("read_repairs");
  }
  uint64_t sm_reads0 = 0;
  uint64_t corrupt0 = 0;
  for (size_t d = 0; d < stack_->device_count(); ++d) {
    sm_reads0 += stack_->device(d).stats().CounterValue("reads");
    corrupt0 += stack_->device(d).stats().CounterValue("blocks_corrupt");
  }
  const ReplicationManager* repl = stack_->replication();
  const uint64_t replicated0 = repl != nullptr ? repl->extents_replicated() : 0;
  const CrossRequestIoStats io0 = SliceIoStats();
  const FabricLinkStats fab0 = FabricStats();

  // ---- Arrival precomputation ----
  // The single loop executes arrival events in (time, schedule-seq) order,
  // with the participant-major scheduling pass defining seq; workload and
  // router draws happen inside those events, in exactly that order, and
  // nothing else touches either RNG. Replaying the draws in a sequential
  // pre-pass over the SORTED arrival times therefore reproduces the
  // single-loop query stream bit-for-bit — and leaves the run itself free
  // of any cross-host RNG coupling.
  SimTime t0{0};
  for (size_t lp = 0; lp < runtime_.process_count(); ++lp) {
    t0 = std::max(t0, runtime_.loop(lp).Now());
  }
  struct Planned {
    SimTime at;
    uint32_t source;
  };
  std::vector<Planned> plan;
  plan.reserve(n * queries_each);
  for (size_t i = 0; i < n; ++i) {
    Rng arrivals(base_config_.seed ^ Mix64(i + 1) ^ 0xa11e);
    SimTime next_arrival = t0;
    for (uint64_t q = 0; q < queries_each; ++q) {
      next_arrival += Seconds(arrivals.NextExponential(1.0 / qps_each));
      plan.push_back(Planned{next_arrival, static_cast<uint32_t>(i)});
    }
  }
  // stable_sort keeps the participant-major order on time ties — the
  // single loop's FIFO tie-break for its scheduling pass.
  std::stable_sort(plan.begin(), plan.end(),
                   [](const Planned& a, const Planned& b) { return a.at < b.at; });
  for (HostShard& h : hosts_) h.stats = ArrivalStats{};
  for (const Planned& p : plan) {
    const Query query = hosts_[p.source].workload->Next();
    const size_t target = RouteTarget(p.source, query.user);
    runtime_.loop(1 + target).ScheduleAt(p.at, [this, target, query] {
      HostShard& h = hosts_[target];
      ++h.stats.served;
      h.engine->Submit(query, [&st = h.stats](Status status, const QueryTrace& trace) {
        if (status.ok()) {
          st.latencies.Record(trace.total);
          ++st.completed;
          if (trace.degraded) ++st.degraded;
          st.rows_failed += trace.rows_failed;
        }
      });
    });
  }

  // ---- The parallel run ----
  runtime_.Run(base_config_.tuning.fabric_latency);

  SimTime t_end = t0;
  for (size_t lp = 0; lp < runtime_.process_count(); ++lp) {
    t_end = std::max(t_end, runtime_.loop(lp).last_event_time());
  }
  const double span_s = (t_end - t0).seconds();

  // ---- Reports (mirrors ClusterSimulation::RunDisaggregated) ----
  double hit_weighted = 0;
  uint64_t served_total = 0;
  for (size_t i = 0; i < n; ++i) {
    const ArrivalStats& st = hosts_[i].stats;
    DisaggregatedHostReport hr;
    hr.run.queries_completed = st.completed;
    hr.run.queries_served = st.served;
    hr.run.offered_qps = qps_each;
    hr.run.achieved_qps = span_s > 0 ? static_cast<double>(st.completed) / span_s : 0;
    hr.run.p50 = SimDuration(st.latencies.P50());
    hr.run.p95 = SimDuration(st.latencies.P95());
    hr.run.p99 = SimDuration(st.latencies.P99());
    hr.run.mean = SimDuration(static_cast<int64_t>(st.latencies.mean()));
    if (DualRowCache* rc = hosts_[i].store->row_cache(); rc != nullptr) {
      const uint64_t h = rc->stats().hits - snaps[i].cache_hits0;
      const uint64_t m = rc->stats().misses - snaps[i].cache_miss0;
      hr.run.row_cache_hit_rate =
          (h + m) == 0 ? 0 : static_cast<double>(h) / static_cast<double>(h + m);
    }
    hr.run.queries_degraded = st.degraded;
    hr.run.rows_failed = st.rows_failed;
    report.queries_degraded += st.degraded;
    report.rows_failed += st.rows_failed;
    hr.run.replica_reads =
        hosts_[i].engine->lookups().stats().CounterValue("replica_reads") -
        snaps[i].replica0;
    hr.run.read_repairs =
        hosts_[i].engine->lookups().stats().CounterValue("read_repairs") -
        snaps[i].repairs0;
    report.replica_reads += hr.run.replica_reads;
    report.read_repairs += hr.run.read_repairs;
    hr.share = hosts_[i].slice->tenant_io_share(0).Since(snaps[i].share0);
    // Cross-host joins happen at the device endpoint in sharded mode (the
    // slice scheduler only sees this host); overlay its ledger so the
    // report fields keep their single-loop meaning.
    hr.share.cross_tenant_hits = endpoint_->cross_host_hits(i) - snaps[i].xhost_hits0;
    hr.share.cross_tenant_bytes_saved =
        endpoint_->cross_host_bytes_saved(i) - snaps[i].xhost_bytes0;
    hr.run.singleflight_hits = hr.share.singleflight_hits;
    hr.throttle_queue_time =
        hosts_[i].slice->throttle_queue_time(0) - snaps[i].queue_time0;
    report.cross_host_hits += hr.share.cross_tenant_hits;
    report.cross_host_bytes_saved += hr.share.cross_tenant_bytes_saved;
    report.sm_logical_bytes += hosts_[i].store->sm_used_bytes();
    report.aggregate_qps += hr.run.achieved_qps;
    hit_weighted += hr.run.row_cache_hit_rate * static_cast<double>(st.served);
    served_total += st.served;
    report.hosts.push_back(std::move(hr));
  }
  report.mean_hit_rate =
      served_total == 0 ? 0 : hit_weighted / static_cast<double>(served_total);

  report.sm_unique_bytes = stack_->sm_used_bytes();
  uint64_t sm_reads1 = 0;
  uint64_t corrupt1 = 0;
  for (size_t d = 0; d < stack_->device_count(); ++d) {
    sm_reads1 += stack_->device(d).stats().CounterValue("reads");
    corrupt1 += stack_->device(d).stats().CounterValue("blocks_corrupt");
  }
  report.sm_device_reads = sm_reads1 - sm_reads0;
  report.blocks_corrupt = corrupt1 - corrupt0;
  if (repl != nullptr) report.extents_replicated = repl->extents_replicated() - replicated0;
  report.io = SliceIoStats().Since(io0);
  const FabricLinkStats fab1 = FabricStats();
  report.fabric.requests = fab1.requests - fab0.requests;
  report.fabric.responses = fab1.responses - fab0.responses;
  report.fabric.request_bytes = fab1.request_bytes - fab0.request_bytes;
  report.fabric.response_bytes = fab1.response_bytes - fab0.response_bytes;
  report.fabric.queue_time = fab1.queue_time - fab0.queue_time;
  report.fabric.dropped = fab1.dropped - fab0.dropped;
  report.fabric.partition_deferred = fab1.partition_deferred - fab0.partition_deferred;
  return report;
}

}  // namespace sdm
