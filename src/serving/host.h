// Host types (paper Table 7) and the single-host serving simulation.
//
// HostSpec captures what distinguishes the paper's deployment platforms:
// CPU sockets, DRAM, attached SSDs, accelerator, and (normalized) power.
// HostSimulation assembles the full stack on one EventLoop — SdmStore,
// ModelLoader, InferenceEngine, QueryGenerator — and drives an open-loop
// Poisson arrival process to measure QPS/latency/hit-rate, the quantities
// Tables 8/9/10/11 build their fleet arithmetic on.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/model_loader.h"
#include "obs/observability.h"
#include "serving/inference_engine.h"

namespace sdm {

struct HostSpec {
  std::string name;
  int cpu_sockets = 1;
  Bytes dram = 64 * kGiB;            ///< nominal production DRAM
  std::vector<DeviceSpec> ssds;      ///< SM devices (empty = DRAM-only host)
  bool accelerator = false;
  /// Host power normalized so HW-L == 1.0 (paper reports normalized power).
  double power = 1.0;
  /// Dense execution rate for one query: per-core flops/s on CPU hosts
  /// (a query's MLP work occupies one core), whole-device flops/s when an
  /// accelerator runs the dense part.
  double dense_flops = 2.0e10;

  /// Usable cores (the admission limit and Eq. 5's compute denominator).
  [[nodiscard]] int cores() const { return 20 * cpu_sockets; }
};

/// Table 7 host types.
[[nodiscard]] HostSpec MakeHwL();   ///< 2x Xeon, 256GB, no SSD
[[nodiscard]] HostSpec MakeHwS();   ///< 1x Xeon, 64GB (scale-out helper)
[[nodiscard]] HostSpec MakeHwSS();  ///< 1x Xeon, 64GB, 2x 2TB Nand
[[nodiscard]] HostSpec MakeHwAN();  ///< accelerator + 2x 1TB Nand
[[nodiscard]] HostSpec MakeHwAO();  ///< accelerator + 2x 0.4TB Optane
/// M3-era platforms (§5.3): big accelerator host, optionally with Optane.
[[nodiscard]] HostSpec MakeHwF();
[[nodiscard]] HostSpec MakeHwFAO(int num_optane_ssds = 9);

struct HostSimConfig {
  HostSpec host;
  /// FM the SDM may use (scaled-down experiments use far less than the
  /// host's nominal DRAM).
  Bytes fm_capacity = 128 * kMiB;
  /// Backing bytes allocated per SSD (scaled).
  Bytes sm_backing_per_device = 256 * kMiB;
  TuningConfig tuning;
  LoaderOptions loader;
  WorkloadConfig workload;
  InferenceConfig inference;
  uint64_t seed = 7;
};

struct HostRunReport {
  uint64_t queries_completed = 0;
  /// Arrivals this host's engine admitted in the run (completed counts only
  /// the ones that finished OK). Stays 0 on a default-constructed report,
  /// which is how cluster aggregation tells an IDLE host (the router never
  /// picked it) from a host that served traffic and achieved nothing.
  uint64_t queries_served = 0;
  double offered_qps = 0;
  double achieved_qps = 0;
  SimDuration p50;
  SimDuration p95;
  SimDuration p99;
  SimDuration mean;
  double row_cache_hit_rate = 0;
  double pooled_hit_rate = 0;
  double sm_iops = 0;               ///< sustained IOs/sec against SM
  double sm_read_amplification = 1;
  // ---- Cross-request batch scheduling (src/sched), this run only ----
  uint64_t cross_request_merges = 0;  ///< spans fused across concurrent queries
  uint64_t singleflight_hits = 0;     ///< runs served by another query's read
  double batch_occupancy = 0;         ///< mean SQEs per ring doorbell
  // ---- Speculative prefetch (src/prefetch), this run only ----
  uint64_t prefetch_issued = 0;       ///< rows read ahead of demand
  double prefetch_hit_rate = 0;       ///< issued rows later claimed by demand
  uint64_t prefetch_wasted_bytes = 0; ///< speculative bus bytes with no demand hit
  // ---- Robustness / fault tolerance (src/fault), this run only ----
  uint64_t io_errors = 0;         ///< device-level read errors (IoEngine)
  uint64_t io_retries = 0;        ///< scheduler-path transient-error retries
  uint64_t reader_retries = 0;    ///< per-row DirectIoReader retries
  uint64_t deadline_expired = 0;  ///< scheduler reads settled by io_deadline
  uint64_t hedges_issued = 0;     ///< tail-latency hedge reads submitted
  uint64_t hedges_won = 0;        ///< hedges that beat the original read
  uint64_t queries_degraded = 0;  ///< completed queries with zero-filled rows
  uint64_t rows_failed = 0;       ///< zero-filled rows across those queries
  uint64_t lookups_shed = 0;      ///< lookups short-circuited by the health monitor
  // ---- Self-healing storage (src/fault), this run only ----
  uint64_t blocks_corrupt = 0;      ///< 4KB blocks failing their checksum (bit rot)
  uint64_t replica_reads = 0;       ///< demand reads failed over to an extent replica
  uint64_t read_repairs = 0;        ///< terminally-failed reads served from a replica
  uint64_t extents_replicated = 0;  ///< extents re-replicated off sick endpoints
  SimDuration avg_cpu_per_query;
  /// Max QPS one host CPU-second supports (1 / cpu_per_query); the compute
  /// term of Eq. 5.
  double cpu_qps_bound = 0;

  [[nodiscard]] std::string Summary() const;
};

class HostSimulation {
 public:
  explicit HostSimulation(HostSimConfig config);

  /// Loads the model onto the host's SDM. Must be called once before Run.
  Status LoadModel(const ModelConfig& model);

  /// Runs `num_queries` open-loop Poisson arrivals at `target_qps`
  /// (virtual time) and reports. Callable repeatedly; histograms reset per
  /// run, caches stay warm across runs (matching steady-state measurement
  /// after a warmup run).
  [[nodiscard]] HostRunReport Run(double target_qps, uint64_t num_queries);

  /// Like Run, but serves queries for an explicit user sequence (one query
  /// per entry) — the cluster router uses this to replay a routed stream.
  [[nodiscard]] HostRunReport RunUsers(std::span<const UserId> users, double target_qps);

  /// Convenience: warm the caches with `n` queries (no measurement).
  void Warmup(uint64_t n, double qps = 1000.0);

  [[nodiscard]] SdmStore& store() { return *store_; }
  [[nodiscard]] InferenceEngine& engine() { return *engine_; }
  [[nodiscard]] QueryGenerator& workload() { return *workload_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] const HostSimConfig& config() const { return config_; }
  [[nodiscard]] const LoadReport& load_report() const { return load_report_; }

  /// Observability (src/obs): non-null iff tuning.obs.enabled() at
  /// LoadModel. Metric names carry the "host0/" source prefix.
  [[nodiscard]] Observability* obs() { return obs_.get(); }
  /// Exports close open metric windows first (idempotent); empty documents
  /// when the corresponding subsystem is off.
  [[nodiscard]] std::string ObsMetricsJson();
  [[nodiscard]] std::string ObsTraceJson();
  [[nodiscard]] std::string ObsSloJson();

  /// Finds the highest QPS whose p-latency stays under `sla` (binary
  /// search over Run; `use_p99` picks the percentile — §2.3's p95 vs p99).
  [[nodiscard]] double FindMaxQps(SimDuration sla, bool use_p99, uint64_t queries_per_probe,
                                  double qps_lo = 50, double qps_hi = 100000);

 private:
  [[nodiscard]] HostRunReport RunInternal(double target_qps, uint64_t num_queries,
                                          const std::function<Query()>& next_query);

  HostSimConfig config_;
  EventLoop loop_;
  std::unique_ptr<Observability> obs_;  ///< must outlive store_/engine_
  std::unique_ptr<SdmStore> store_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<QueryGenerator> workload_;
  LoadReport load_report_;
  ModelConfig model_;
  bool loaded_ = false;
};

}  // namespace sdm
