// InferenceEngine — executes DLRM inference queries on one host (paper §2).
//
// Per query:
//   - every embedding operator (one per table) runs through the SDM's
//     LookupEngine; user tables typically resolve via cache/SM IO, item
//     tables via FM/accelerator memory;
//   - with inter-op parallelism (Appendix A.2) all operators are in flight
//     at once and IO overlaps compute; without it they chain serially —
//     the paper's ~20% latency / QPS delta reproduces from this switch;
//   - the top MLP depends on both sides (Eq. 3), so query latency is
//     max(user path, item path) + dense time. SM latency is hidden while
//     it stays under the item path (Eq. 4's budget).
//
// Host capacity: a bounded number of in-flight queries (admission queue)
// and a shared CPU modeled as a processor with `cpu_time_per_query` derived
// from the measured operator costs; both throttle throughput at high QPS.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/histogram.h"
#include "core/lookup_engine.h"
#include "dlrm/dlrm_model.h"
#include "obs/observability.h"
#include "trace/trace_gen.h"

namespace sdm {

struct InferenceConfig {
  /// Run embedding operators concurrently (A.2). Off = serial chaining.
  bool inter_op_parallelism = true;

  /// Admission limit: queries executing concurrently on the host.
  /// <= 0 means "one per core" (HostSimulation fills it from the HostSpec);
  /// direct InferenceEngine constructions must set it explicitly.
  int max_concurrent_queries = 0;

  /// Dense-side compute model (top+bottom MLP over the item batch).
  DenseCostModel dense;

  /// When true the dense work runs on an accelerator: dense.flops_per_sec
  /// is the accelerator's rate and dense time is not charged to host CPU.
  bool accelerator = false;
};

struct QueryTrace {
  SimDuration user_path;    ///< slowest user-table operator
  SimDuration item_path;    ///< slowest item-table operator
  SimDuration dense_time;   ///< MLP time charged after both paths
  SimDuration queue_time;   ///< admission queueing
  SimDuration total;
  uint32_t sm_rows = 0;
  uint32_t cache_hits = 0;
  uint32_t pooled_hits = 0;
  /// Embedding rows that pooled as zeros after their IO exhausted retries
  /// or was shed from a sick endpoint (graceful degradation, src/fault).
  uint32_t rows_failed = 0;
  /// Any operator of this query completed degraded.
  bool degraded = false;
};

using QueryCallback = std::function<void(Status, const QueryTrace&)>;

class InferenceEngine {
 public:
  /// `store` must be sealed and contain one runtime table per entry of
  /// `model.tables` (ModelLoader guarantees this).
  InferenceEngine(SdmStore* store, const ModelConfig& model, InferenceConfig config);

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits one query; callback fires on the event loop at completion.
  void Submit(const Query& query, QueryCallback cb);

  [[nodiscard]] int in_flight() const { return in_flight_; }
  [[nodiscard]] size_t queued() const { return admission_queue_.size(); }

  [[nodiscard]] const Histogram& query_latency() const { return latency_; }
  [[nodiscard]] const Histogram& user_path_latency() const { return user_path_; }
  [[nodiscard]] const Histogram& item_path_latency() const { return item_path_; }
  [[nodiscard]] LookupEngine& lookups() { return *lookup_engine_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  /// Host-wide cross-request IO batching effectiveness (src/sched): how
  /// often concurrent operators shared device reads and how full each ring
  /// doorbell ran. Cumulative across runs, like the engine counters.
  [[nodiscard]] CrossRequestIoStats cross_request_io() const {
    return store_->cross_request_io_stats();
  }
  /// Speculative-readahead effectiveness (src/prefetch): rows issued ahead
  /// of demand, how many demand later claimed, and the wasted bus bytes.
  /// Zeroes when tuning.enable_prefetch is off.
  [[nodiscard]] PrefetchStats prefetch_stats() const {
    return store_->prefetch_stats();
  }
  [[nodiscard]] const InferenceConfig& config() const { return config_; }
  [[nodiscard]] const ModelConfig& model() const { return model_; }

  /// Mean host-CPU virtual time per completed query (operator + IO engine
  /// CPU), the input to QPS-per-host capacity math (Eq. 5).
  [[nodiscard]] SimDuration AvgCpuPerQuery() const;

 private:
  struct QueryState;

  void Start(std::shared_ptr<QueryState> st);
  void LaunchOperator(const std::shared_ptr<QueryState>& st, size_t table_idx);
  void OnOperatorDone(const std::shared_ptr<QueryState>& st, size_t table_idx,
                      const LookupTrace& trace);
  void FinishQuery(const std::shared_ptr<QueryState>& st);
  void AdmitFromQueue();

  SdmStore* store_;
  ModelConfig model_;
  InferenceConfig config_;
  EventLoop* loop_;
  std::unique_ptr<LookupEngine> lookup_engine_;

  int in_flight_ = 0;
  struct PendingQuery {
    Query query;
    QueryCallback cb;
    SimTime arrival;
    bool traced = false;  ///< sampled at Submit, before any queueing
  };
  std::deque<PendingQuery> admission_queue_;

  Histogram latency_;
  Histogram user_path_;
  Histogram item_path_;
  StatsRegistry stats_;
  Counter* queries_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* cpu_ns_ = nullptr;

  // ---- Observability (src/obs); all null when off. Handles resolve from
  // the store's Observability in the ctor; query tracing samples every
  // SpanRecorder::sample_every()'th submission (by stable submit sequence,
  // so the sample set is identical run to run) and marks its lookups
  // `traced` so the engine records their spans too. ----
  WindowedCounter* obs_queries_ = nullptr;
  WindowedCounter* obs_degraded_ = nullptr;
  WindowedGauge* obs_queue_depth_ = nullptr;
  WindowedHistogram* obs_lat_ = nullptr;
  SpanRecorder* obs_spans_ = nullptr;
  SpanRecorder::TrackId obs_track_ = 0;
  uint64_t submit_seq_ = 0;
};

}  // namespace sdm
