// RunInterleavedArrivals — the shared interleaved open-loop arrival driver
// behind every "many engines, one EventLoop" experiment.
//
// MultiTenantHost::RunShared introduced the loop (every tenant's Poisson
// arrivals interleave in virtual time so concurrent tenants' reads meet in
// the shared BatchSchedulers); ClusterSimulation::RunDisaggregated is its
// generalization — N HOSTS on one loop, with a router deciding which
// host's engine each arrival enters. The only degree of freedom between
// the two is that routing hook, so the loop lives here once:
//
//   - each participant runs an independent Poisson process (qps_each,
//     queries_each) seeded by its own arrival_seed, all interleaved on one
//     EventLoop;
//   - an arrival draws the next query from its SOURCE participant's
//     workload, then `route(source, query)` picks the participant whose
//     engine serves it (identity for the multi-tenant host; user-sticky /
//     random / local for the cluster);
//   - stats are attributed to the SERVING participant: `served` counts
//     arrivals entering its engine, `completed` and `latencies` its OK
//     completions.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/event_loop.h"
#include "common/histogram.h"
#include "serving/inference_engine.h"
#include "trace/trace_gen.h"

namespace sdm {

struct ArrivalParticipant {
  InferenceEngine* engine = nullptr;
  QueryGenerator* workload = nullptr;
  /// Seeds this participant's independent Poisson arrival process.
  uint64_t arrival_seed = 0;
};

struct ArrivalStats {
  Histogram latencies;
  uint64_t served = 0;     ///< arrivals that entered this participant's engine
  uint64_t completed = 0;  ///< queries that finished OK there
  /// Of `completed`, queries whose pooled output is missing rows (some
  /// embedding IO exhausted retries or was shed; graceful degradation).
  uint64_t degraded = 0;
  uint64_t rows_failed = 0;  ///< zero-filled rows across degraded queries
};

/// Maps (source participant, drawn query) to the serving participant.
using ArrivalRoute = std::function<size_t(size_t source, const Query& query)>;

/// Schedules every participant's arrivals, runs the loop to idle, and
/// returns per-participant stats (indexed like `participants`).
std::vector<ArrivalStats> RunInterleavedArrivals(
    EventLoop& loop, std::span<const ArrivalParticipant> participants,
    double qps_each, uint64_t queries_each, const ArrivalRoute& route);

}  // namespace sdm
