#include "serving/arrival_loop.h"

#include <cassert>

#include "common/rng.h"

namespace sdm {

std::vector<ArrivalStats> RunInterleavedArrivals(
    EventLoop& loop, std::span<const ArrivalParticipant> participants,
    double qps_each, uint64_t queries_each, const ArrivalRoute& route) {
  assert(qps_each > 0);
  std::vector<ArrivalStats> stats(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    Rng arrivals(participants[i].arrival_seed);
    SimTime next_arrival = loop.Now();
    for (uint64_t q = 0; q < queries_each; ++q) {
      next_arrival += Seconds(arrivals.NextExponential(1.0 / qps_each));
      loop.ScheduleAt(next_arrival, [&participants, &stats, &route, i] {
        const Query query = participants[i].workload->Next();
        const size_t target = route(i, query);
        ArrivalStats& st = stats[target];
        ++st.served;
        participants[target].engine->Submit(
            query, [&st](Status status, const QueryTrace& trace) {
              if (status.ok()) {
                st.latencies.Record(trace.total);
                ++st.completed;
                if (trace.degraded) ++st.degraded;
                st.rows_failed += trace.rows_failed;
              }
            });
      });
    }
  }
  loop.RunUntilIdle();
  return stats;
}

}  // namespace sdm
