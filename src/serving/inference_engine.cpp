#include "serving/inference_engine.h"

#include <cassert>
#include <cstdio>

namespace sdm {

struct InferenceEngine::QueryState {
  Query query;
  QueryCallback cb;
  SimTime arrival;
  SimTime start;
  bool traced = false;  ///< span-sampled query; propagates to its lookups

  size_t next_operator = 0;  // serial mode cursor
  size_t operators_done = 0;
  SimTime user_path_end;
  SimTime item_path_end;
  QueryTrace trace;
};

InferenceEngine::InferenceEngine(SdmStore* store, const ModelConfig& model,
                                 InferenceConfig config)
    : store_(store), model_(model), config_(config), loop_(store->loop()) {
  assert(store->loading_finished());
  assert(store->table_count() == model_.tables.size());
  if (config_.max_concurrent_queries <= 0) {
    config_.max_concurrent_queries = 20;  // single-socket default
  }
  lookup_engine_ = std::make_unique<LookupEngine>(store);
  queries_ = stats_.GetCounter("queries");
  errors_ = stats_.GetCounter("errors");
  cpu_ns_ = stats_.GetCounter("cpu_ns");

  Observability* obs = store->obs();
  const std::string& prefix = store->obs_prefix();
  obs_queries_ = ObsCounter(obs, prefix + "query/requests");
  obs_degraded_ = ObsCounter(obs, prefix + "query/degraded");
  obs_queue_depth_ = ObsGauge(obs, prefix + "query/queue_depth");
  obs_lat_ = ObsHist(obs, prefix + "query/latency_ns");
  obs_spans_ = ObsSpans(obs);
  if (obs_spans_ != nullptr) {
    std::string process = prefix;
    if (!process.empty() && process.back() == '/') process.pop_back();
    if (process.empty()) process = "host";
    obs_track_ = obs_spans_->Track(process, "queries");
  }
}

void InferenceEngine::Submit(const Query& query, QueryCallback cb) {
  auto st = std::make_shared<QueryState>();
  st->query = query;
  st->cb = std::move(cb);
  st->arrival = loop_->Now();
  // Sample by submission sequence (not completion order) so the traced set
  // is the same queries in every run regardless of queueing.
  st->traced = obs_spans_ != nullptr &&
               (submit_seq_++ % obs_spans_->sample_every()) == 0;
  if (in_flight_ >= config_.max_concurrent_queries) {
    admission_queue_.push_back(PendingQuery{std::move(st->query), std::move(st->cb),
                                            st->arrival, st->traced});
    if (obs_queue_depth_ != nullptr) {
      obs_queue_depth_->Set(loop_->Now(),
                            static_cast<double>(admission_queue_.size()));
    }
    return;
  }
  ++in_flight_;
  Start(std::move(st));
}

void InferenceEngine::AdmitFromQueue() {
  if (admission_queue_.empty() || in_flight_ >= config_.max_concurrent_queries) return;
  PendingQuery p = std::move(admission_queue_.front());
  admission_queue_.pop_front();
  if (obs_queue_depth_ != nullptr) {
    obs_queue_depth_->Set(loop_->Now(),
                          static_cast<double>(admission_queue_.size()));
  }
  auto st = std::make_shared<QueryState>();
  st->query = std::move(p.query);
  st->cb = std::move(p.cb);
  st->arrival = p.arrival;
  st->traced = p.traced;
  ++in_flight_;
  Start(std::move(st));
}

void InferenceEngine::Start(std::shared_ptr<QueryState> st) {
  st->start = loop_->Now();
  st->trace.queue_time = st->start - st->arrival;
  st->user_path_end = st->start;
  st->item_path_end = st->start;

  if (st->query.indices.size() != model_.tables.size()) {
    errors_->Add(1);
    --in_flight_;
    st->cb(InvalidArgumentError("query index lists != table count"), st->trace);
    AdmitFromQueue();
    return;
  }

  if (config_.inter_op_parallelism) {
    // All operators in flight at once; IO discovery overlaps compute (A.2).
    for (size_t t = 0; t < model_.tables.size(); ++t) {
      LaunchOperator(st, t);
    }
  } else {
    LaunchOperator(st, 0);
  }
}

void InferenceEngine::LaunchOperator(const std::shared_ptr<QueryState>& st, size_t table_idx) {
  LookupRequest req;
  req.table = MakeTableId(static_cast<uint32_t>(table_idx));
  req.indices = st->query.indices[table_idx];
  req.traced = st->traced;
  if (req.indices.empty()) {
    // Feature absent for this sample: completes instantly with a zero
    // contribution; still counts as an operator.
    LookupTrace empty;
    OnOperatorDone(st, table_idx, empty);
    return;
  }
  lookup_engine_->Lookup(std::move(req),
                         [this, st, table_idx](Status status, std::vector<float> /*pooled*/,
                                               const LookupTrace& trace) {
                           if (!status.ok()) errors_->Add(1);
                           OnOperatorDone(st, table_idx, trace);
                         });
}

void InferenceEngine::OnOperatorDone(const std::shared_ptr<QueryState>& st, size_t table_idx,
                                     const LookupTrace& trace) {
  const SimTime now = loop_->Now();
  const TableConfig& cfg = model_.tables[table_idx];
  if (cfg.role == TableRole::kUser) {
    st->user_path_end = std::max(st->user_path_end, now);
  } else {
    st->item_path_end = std::max(st->item_path_end, now);
  }
  st->trace.sm_rows += trace.rows_from_sm;
  st->trace.cache_hits += trace.rows_from_cache;
  st->trace.pooled_hits += trace.pooled_cache_hit ? 1 : 0;
  st->trace.rows_failed += trace.rows_failed;
  st->trace.degraded = st->trace.degraded || trace.degraded;
  ++st->operators_done;

  if (!config_.inter_op_parallelism) {
    ++st->next_operator;
    if (st->next_operator < model_.tables.size()) {
      LaunchOperator(st, st->next_operator);
      return;
    }
  }
  if (st->operators_done == model_.tables.size()) {
    FinishQuery(st);
  }
}

void InferenceEngine::FinishQuery(const std::shared_ptr<QueryState>& st) {
  const SimTime now = loop_->Now();
  st->trace.user_path = st->user_path_end - st->start;
  st->trace.item_path = st->item_path_end - st->start;

  const SimDuration dense = config_.dense.TimePerQuery(model_);
  if (!config_.accelerator) {
    cpu_ns_->Add(static_cast<uint64_t>(dense.nanos()));
  }
  st->trace.dense_time = dense;

  loop_->ScheduleAfter(dense, [this, st, now] {
    (void)now;
    st->trace.total = loop_->Now() - st->arrival;
    latency_.Record(st->trace.total);
    user_path_.Record(st->trace.user_path);
    item_path_.Record(st->trace.item_path);
    queries_->Add(1);
    if (obs_queries_ != nullptr) {
      obs_queries_->Add(loop_->Now());
      if (st->trace.degraded) obs_degraded_->Add(loop_->Now());
      obs_lat_->Record(loop_->Now(), st->trace.total);
    }
    if (obs_spans_ != nullptr && st->traced) {
      char args[96];
      std::snprintf(args, sizeof(args),
                    "{\"queue_ns\":%lld,\"sm_rows\":%zu,\"degraded\":%s}",
                    static_cast<long long>(st->trace.queue_time.nanos()),
                    static_cast<size_t>(st->trace.sm_rows),
                    st->trace.degraded ? "true" : "false");
      obs_spans_->Span(obs_track_, "query", st->arrival, loop_->Now(), args);
    }
    --in_flight_;
    assert(in_flight_ >= 0);
    st->cb(Status::Ok(), st->trace);
    AdmitFromQueue();
  });
}

SimDuration InferenceEngine::AvgCpuPerQuery() const {
  const uint64_t q = queries_->value();
  if (q == 0) return SimDuration(0);
  // Operator-side CPU + dense CPU charged here; IO-engine CPU lives in the
  // store's engines and is added by the host report.
  uint64_t total = cpu_ns_->value() + static_cast<uint64_t>(lookup_engine_->cpu_time().nanos());
  return SimDuration(static_cast<int64_t>(total / q));
}

}  // namespace sdm
