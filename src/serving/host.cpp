#include "serving/host.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/kv_format.h"
#include "common/logging.h"
#include "fault/replication_manager.h"

namespace sdm {

HostSpec MakeHwL() {
  HostSpec h;
  h.name = "HW-L";
  h.cpu_sockets = 2;
  h.dram = 256 * kGiB;
  h.power = 1.0;
  h.dense_flops = 2.0e10;  // per-core
  return h;
}

HostSpec MakeHwS() {
  HostSpec h;
  h.name = "HW-S";
  h.cpu_sockets = 1;
  h.dram = 64 * kGiB;
  h.power = 0.15;  // 0.25 of an HW-AN (0.6) in Table 9's normalization
  h.dense_flops = 2.0e10;
  return h;
}

HostSpec MakeHwSS() {
  HostSpec h;
  h.name = "HW-SS";
  h.cpu_sockets = 1;
  h.dram = 64 * kGiB;
  h.ssds = {MakeNandFlashSpec(2000 * kGiB), MakeNandFlashSpec(2000 * kGiB)};
  h.power = 0.4;  // Table 8
  h.dense_flops = 2.0e10;
  return h;
}

HostSpec MakeHwAN() {
  HostSpec h;
  h.name = "HW-AN";
  h.cpu_sockets = 1;
  h.dram = 64 * kGiB;
  h.ssds = {MakeNandFlashSpec(1000 * kGiB), MakeNandFlashSpec(1000 * kGiB)};
  h.accelerator = true;
  h.power = 0.6;  // accelerated host; Table 9 normalizes this to 1.0
  h.dense_flops = 2.0e12;  // accelerator executes the dense part
  return h;
}

HostSpec MakeHwAO() {
  HostSpec h = MakeHwAN();
  h.name = "HW-AO";
  h.ssds = {MakeOptaneSsdSpec(400 * kGiB), MakeOptaneSsdSpec(400 * kGiB)};
  h.power = 0.6;  // Optane SSDs add ~nothing at host scale
  return h;
}

HostSpec MakeHwF() {
  HostSpec h;
  h.name = "HW-FA";
  h.cpu_sockets = 2;
  h.dram = 256 * kGiB;
  h.accelerator = true;
  h.power = 1.0;
  h.dense_flops = 2.0e13;  // next-gen accelerator
  return h;
}

HostSpec MakeHwFAO(int num_optane_ssds) {
  HostSpec h = MakeHwF();
  h.name = "HW-FAO";
  for (int i = 0; i < num_optane_ssds; ++i) {
    h.ssds.push_back(MakeOptaneSsdSpec(400 * kGiB));
  }
  // Table 11: the Optane complement costs ~1% of host power.
  h.power = 1.01;
  return h;
}

HostSimulation::HostSimulation(HostSimConfig config) : config_(std::move(config)) {}

Status HostSimulation::LoadModel(const ModelConfig& model) {
  if (loaded_) return FailedPreconditionError("model already loaded");
  model_ = model;

  SdmStoreConfig scfg;
  scfg.fm_capacity = config_.fm_capacity;
  for (const auto& ssd : config_.host.ssds) {
    scfg.sm_specs.push_back(ssd);
    scfg.sm_backing_bytes.push_back(config_.sm_backing_per_device);
  }
  scfg.tuning = config_.tuning;
  scfg.seed = config_.seed;
  if (config_.tuning.obs.enabled()) {
    obs_ = std::make_unique<Observability>(config_.tuning.obs);
    scfg.obs = obs_.get();
    scfg.obs_prefix = "host0/";
  }
  store_ = std::make_unique<SdmStore>(scfg, &loop_);

  auto report = ModelLoader::Load(model_, config_.loader, store_.get());
  if (!report.ok()) return report.status();
  load_report_ = std::move(report).value();

  InferenceConfig icfg = config_.inference;
  icfg.accelerator = config_.host.accelerator;
  icfg.dense.flops_per_sec = config_.host.dense_flops;
  // One in-flight query occupies roughly one core; defaulting the admission
  // limit to the core count makes Eq. 5's compute bound emerge from the
  // simulation instead of being bolted on.
  if (icfg.max_concurrent_queries <= 0) {
    icfg.max_concurrent_queries = config_.host.cores();
  }
  engine_ = std::make_unique<InferenceEngine>(store_.get(), model_, icfg);
  workload_ = std::make_unique<QueryGenerator>(model_, config_.workload);
  loaded_ = true;
  return Status::Ok();
}

void HostSimulation::Warmup(uint64_t n, double qps) {
  (void)Run(qps, n);
}

HostRunReport HostSimulation::Run(double target_qps, uint64_t num_queries) {
  return RunInternal(target_qps, num_queries, [this] { return workload_->Next(); });
}

HostRunReport HostSimulation::RunUsers(std::span<const UserId> users, double target_qps) {
  size_t cursor = 0;
  return RunInternal(target_qps, users.size(), [this, users, cursor]() mutable {
    return workload_->ForUser(users[cursor++]);
  });
}

HostRunReport HostSimulation::RunInternal(double target_qps, uint64_t num_queries,
                                          const std::function<Query()>& next_query) {
  assert(loaded_);
  assert(target_qps > 0);

  // Reset measurement state; keep caches warm.
  const uint64_t cache_hits0 =
      store_->row_cache() != nullptr ? store_->row_cache()->stats().hits : 0;
  const uint64_t cache_miss0 =
      store_->row_cache() != nullptr ? store_->row_cache()->stats().misses : 0;
  uint64_t sm_reads0 = 0;
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    sm_reads0 += store_->sm_device(d).stats().CounterValue("reads");
  }
  const uint64_t pooled_hits0 =
      store_->pooled_cache() != nullptr ? store_->pooled_cache()->stats().hits : 0;
  const uint64_t pooled_total0 =
      store_->pooled_cache() != nullptr
          ? store_->pooled_cache()->stats().hits + store_->pooled_cache()->stats().misses +
                store_->pooled_cache()->stats().uncacheable
          : 0;
  const CrossRequestIoStats xreq0 = store_->cross_request_io_stats();
  const PrefetchStats pf0 = store_->prefetch_stats();
  // Robustness counters are cumulative too; snapshot for per-run deltas.
  const uint64_t lk_retries0 = engine_->lookups().stats().CounterValue("io_retries");
  const uint64_t rows_failed0 = engine_->lookups().stats().CounterValue("rows_failed");
  const uint64_t shed0 = engine_->lookups().stats().CounterValue("shed_lookups");
  const uint64_t replica0 = engine_->lookups().stats().CounterValue("replica_reads");
  const uint64_t repairs0 = engine_->lookups().stats().CounterValue("read_repairs");
  uint64_t dev_errors0 = 0;
  uint64_t reader_retries0 = 0;
  uint64_t corrupt0 = 0;
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    dev_errors0 += store_->io_engine(d).stats().CounterValue("errors");
    reader_retries0 += store_->reader(d).retries();
    corrupt0 += store_->sm_device(d).stats().CounterValue("blocks_corrupt");
  }
  const ReplicationManager* repl = store_->device_service().replication();
  const uint64_t replicated0 = repl != nullptr ? repl->extents_replicated() : 0;
  // CPU accounting is cumulative across runs; snapshot for per-run deltas.
  uint64_t cpu0 = static_cast<uint64_t>(engine_->lookups().cpu_time().nanos()) +
                  engine_->stats().CounterValue("cpu_ns");
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    cpu0 += static_cast<uint64_t>(store_->io_engine(d).cpu_time().nanos());
  }

  Histogram latencies;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  Rng arrivals(config_.seed ^ 0xa11e);

  const SimTime t_begin = loop_.Now();
  SimTime next_arrival = loop_.Now();
  for (uint64_t i = 0; i < num_queries; ++i) {
    next_arrival += Seconds(arrivals.NextExponential(1.0 / target_qps));
    loop_.ScheduleAt(next_arrival, [this, &latencies, &completed, &degraded, &next_query] {
      const Query q = next_query();
      engine_->Submit(q, [&latencies, &completed,
                          &degraded](Status status, const QueryTrace& trace) {
        if (status.ok()) {
          latencies.Record(trace.total);
          ++completed;
          if (trace.degraded) ++degraded;
        }
      });
    });
  }
  loop_.RunUntilIdle();
  const SimTime t_end = loop_.Now();

  HostRunReport r;
  r.queries_completed = completed;
  r.queries_served = num_queries;
  r.offered_qps = target_qps;
  const double span_s = (t_end - t_begin).seconds();
  r.achieved_qps = span_s > 0 ? static_cast<double>(completed) / span_s : 0;
  r.p50 = SimDuration(latencies.P50());
  r.p95 = SimDuration(latencies.P95());
  r.p99 = SimDuration(latencies.P99());
  r.mean = SimDuration(static_cast<int64_t>(latencies.mean()));

  if (store_->row_cache() != nullptr) {
    const auto& cs = store_->row_cache()->stats();
    const uint64_t h = cs.hits - cache_hits0;
    const uint64_t m = cs.misses - cache_miss0;
    r.row_cache_hit_rate = (h + m) == 0 ? 0 : static_cast<double>(h) / static_cast<double>(h + m);
  }
  if (store_->pooled_cache() != nullptr) {
    const auto& ps = store_->pooled_cache()->stats();
    const uint64_t hits = ps.hits - pooled_hits0;
    const uint64_t total = (ps.hits + ps.misses + ps.uncacheable) - pooled_total0;
    r.pooled_hit_rate = total == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  uint64_t sm_reads1 = 0;
  double amp_num = 0;
  double amp_den = 0;
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    const auto& st = store_->sm_device(d).stats();
    sm_reads1 += st.CounterValue("reads");
    amp_num += static_cast<double>(st.CounterValue("bus_bytes"));
    amp_den += static_cast<double>(st.CounterValue("useful_bytes"));
  }
  r.sm_iops = span_s > 0 ? static_cast<double>(sm_reads1 - sm_reads0) / span_s : 0;
  r.sm_read_amplification = amp_den > 0 ? amp_num / amp_den : 1.0;
  const CrossRequestIoStats xreq =
      store_->cross_request_io_stats().Since(xreq0);  // this run's delta
  r.cross_request_merges = xreq.cross_request_merges;
  r.singleflight_hits = xreq.singleflight_hits;
  r.batch_occupancy = xreq.BatchOccupancy();
  const PrefetchStats pf1 = store_->prefetch_stats();
  r.prefetch_issued = pf1.rows_issued - pf0.rows_issued;
  // Claims can lag issues across runs (rows issued during warmup may be
  // claimed here), so the per-run ratio is clamped to [0,1].
  const uint64_t pf_hits = pf1.rows_hit - pf0.rows_hit;
  r.prefetch_hit_rate =
      r.prefetch_issued == 0
          ? 0
          : std::min(1.0, static_cast<double>(pf_hits) /
                              static_cast<double>(r.prefetch_issued));
  const uint64_t pf_bytes = pf1.bytes_issued - pf0.bytes_issued;
  const uint64_t pf_bytes_hit = pf1.bytes_hit - pf0.bytes_hit;
  r.prefetch_wasted_bytes = pf_bytes > pf_bytes_hit ? pf_bytes - pf_bytes_hit : 0;
  // Robustness deltas (src/fault): device errors, retry traffic, deadline /
  // hedge responses, and what graceful degradation cost in row fidelity.
  r.io_retries = engine_->lookups().stats().CounterValue("io_retries") - lk_retries0;
  r.rows_failed = engine_->lookups().stats().CounterValue("rows_failed") - rows_failed0;
  r.lookups_shed = engine_->lookups().stats().CounterValue("shed_lookups") - shed0;
  r.replica_reads = engine_->lookups().stats().CounterValue("replica_reads") - replica0;
  r.read_repairs = engine_->lookups().stats().CounterValue("read_repairs") - repairs0;
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    r.io_errors += store_->io_engine(d).stats().CounterValue("errors");
    r.reader_retries += store_->reader(d).retries();
    r.blocks_corrupt += store_->sm_device(d).stats().CounterValue("blocks_corrupt");
  }
  r.io_errors -= dev_errors0;
  r.reader_retries -= reader_retries0;
  r.blocks_corrupt -= corrupt0;
  if (repl != nullptr) r.extents_replicated = repl->extents_replicated() - replicated0;
  r.deadline_expired = xreq.deadline_expired;
  r.hedges_issued = xreq.hedges_issued;
  r.hedges_won = xreq.hedges_won;
  r.queries_degraded = degraded;
  // Per-run CPU: operator-side (lookup engine + dense) plus IO-engine CPU.
  uint64_t cpu1 = static_cast<uint64_t>(engine_->lookups().cpu_time().nanos()) +
                  engine_->stats().CounterValue("cpu_ns");
  for (size_t d = 0; d < store_->sm_device_count(); ++d) {
    cpu1 += static_cast<uint64_t>(store_->io_engine(d).cpu_time().nanos());
  }
  const uint64_t q = std::max<uint64_t>(1, completed);
  r.avg_cpu_per_query = SimDuration(static_cast<int64_t>((cpu1 - cpu0) / q));
  const double cores = config_.host.cores();
  r.cpu_qps_bound = r.avg_cpu_per_query.nanos() > 0
                        ? cores * 1e9 / static_cast<double>(r.avg_cpu_per_query.nanos())
                        : 0;
  return r;
}

std::string HostSimulation::ObsMetricsJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->MetricsJson();
}

std::string HostSimulation::ObsTraceJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->TraceJson();
}

std::string HostSimulation::ObsSloJson() {
  if (obs_ == nullptr) return "{}";
  obs_->Finalize();
  return obs_->SloJson();
}

double HostSimulation::FindMaxQps(SimDuration sla, bool use_p99, uint64_t queries_per_probe,
                                  double qps_lo, double qps_hi) {
  assert(loaded_);
  // A probe passes when the SLA percentile holds. Saturation shows up as a
  // growing admission backlog inflating the percentile within the probe
  // (the measured span includes queue drain), so latency alone is the
  // signal; an explicit achieved-rate check would be biased by the drain
  // tail at small probe sizes.
  auto passes = [&](double qps) {
    const HostRunReport r = Run(qps, queries_per_probe);
    const SimDuration lat = use_p99 ? r.p99 : r.p95;
    return lat <= sla;
  };
  if (!passes(qps_lo)) return 0;
  if (passes(qps_hi)) return qps_hi;
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = 0.5 * (qps_lo + qps_hi);
    if (passes(mid)) {
      qps_lo = mid;
    } else {
      qps_hi = mid;
    }
  }
  return qps_lo;
}

std::string HostRunReport::Summary() const {
  KvFormatter f;
  f.Kv("qps", "%.0f/%.0f", achieved_qps, offered_qps)
      .Kv("p50", "%.2fms", p50.millis())
      .Kv("p95", "%.2fms", p95.millis())
      .Kv("p99", "%.2fms", p99.millis())
      .Kv("hit", "%.1f%%", row_cache_hit_rate * 100)
      .Kv("pooled", "%.1f%%", pooled_hit_rate * 100)
      .Kv("iops", "%.0f", sm_iops)
      .Kv("amp", "%.2f", sm_read_amplification)
      .Kv("cpu/q", "%.0fus", avg_cpu_per_query.micros())
      .Kv("sf", "%llu", static_cast<unsigned long long>(singleflight_hits))
      .Kv("xmerge", "%llu", static_cast<unsigned long long>(cross_request_merges))
      .Kv("occ", "%.1f", batch_occupancy)
      .Kv("pf", "%llu", static_cast<unsigned long long>(prefetch_issued))
      .Kv("pfhit", "%.1f%%", prefetch_hit_rate * 100)
      .Kv("pfwaste", "%lluKiB", static_cast<unsigned long long>(prefetch_wasted_bytes / kKiB))
      .Kv("err", "%llu", static_cast<unsigned long long>(io_errors))
      .Kv("retry", "%llu+%llu", static_cast<unsigned long long>(io_retries),
          static_cast<unsigned long long>(reader_retries))
      .Kv("ddl", "%llu", static_cast<unsigned long long>(deadline_expired))
      .Kv("hedge", "%llu/%llu", static_cast<unsigned long long>(hedges_won),
          static_cast<unsigned long long>(hedges_issued))
      .Kv("deg", "%llu", static_cast<unsigned long long>(queries_degraded))
      .Kv("rowsf", "%llu", static_cast<unsigned long long>(rows_failed))
      .Kv("shed", "%llu", static_cast<unsigned long long>(lookups_shed))
      .Kv("rot", "%llu", static_cast<unsigned long long>(blocks_corrupt))
      .Kv("rrd", "%llu", static_cast<unsigned long long>(read_repairs))
      .Kv("rep", "%llu", static_cast<unsigned long long>(replica_reads))
      .Kv("xrep", "%llu", static_cast<unsigned long long>(extents_replicated));
  return f.str();
}

}  // namespace sdm
