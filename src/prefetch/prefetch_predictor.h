// Per-table prefetch prediction (ROADMAP "Prefetching"; paper §4.2).
//
// Two strategies behind one interface, matching the two locality regimes
// the paper measures:
//
//  - kHotSet: an exponentially-decayed access histogram ranks rows by
//    recent popularity; Predict() returns the current top-K. This exploits
//    the temporal skew of Fig. 4 (user tables concentrate most accesses in
//    few rows) — the same signal that justifies the row cache, applied
//    proactively: re-populate hot rows from background bandwidth before
//    the next demand miss pays SM latency for them.
//  - kNextBlock: a stride detector keyed on recent *miss* blocks predicts
//    the blocks a sequential or strided scan will touch next — classic
//    block-layer readahead. On the Feistel-permuted Zipf streams of Fig. 5
//    this rarely fires (production has little spatial locality); it exists
//    for scan-shaped workloads (model refresh, table dumps) and as the
//    ablation partner of kHotSet in bench_prefetch.
//
// Predictors are pure bookkeeping: they never touch devices or caches.
// Turning predictions into IO (planning, admission, cache fill) is the
// Prefetcher's job.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sdm {

enum class PrefetchStrategy : uint8_t {
  kHotSet,     ///< decayed-histogram top-K (temporal locality, Fig. 4)
  kNextBlock,  ///< stride/next-block readahead on the miss stream
};

[[nodiscard]] const char* ToString(PrefetchStrategy s);

/// One predicted row with the predictor's confidence in [0, 1]. The
/// Prefetcher drops candidates below TuningConfig::prefetch_min_confidence.
struct PrefetchCandidate {
  RowIndex row = 0;
  double confidence = 0;
};

/// Geometry the predictor needs to map rows to device blocks.
struct PredictorGeometry {
  Bytes table_offset = 0;  ///< device byte offset of row 0
  Bytes row_bytes = 0;
  uint64_t num_rows = 0;
};

class PrefetchPredictor {
 public:
  virtual ~PrefetchPredictor() = default;

  /// One demand access to `row` (post-dedup: one call per distinct row per
  /// request), whatever tier served it.
  virtual void RecordAccess(RowIndex row) = 0;

  /// `row` missed every cache and went to the device.
  virtual void RecordMiss(RowIndex row) = 0;

  /// Up to `max` candidate rows worth prefetching now, best first.
  [[nodiscard]] virtual std::vector<PrefetchCandidate> Predict(size_t max) = 0;

  [[nodiscard]] virtual PrefetchStrategy strategy() const = 0;
};

/// Factory for the strategy selected in TuningConfig.
[[nodiscard]] std::unique_ptr<PrefetchPredictor> MakePredictor(
    PrefetchStrategy strategy, const PredictorGeometry& geometry);

/// Exponentially-decayed access histogram. Every `kDecayEvery` recorded
/// accesses all weights shrink by `kDecayFactor`, so a row's weight is a
/// geometric sum over its access recency — the hot set tracks workload
/// drift instead of fossilizing the warmup distribution.
class HotSetPredictor final : public PrefetchPredictor {
 public:
  explicit HotSetPredictor(const PredictorGeometry& geometry);

  void RecordAccess(RowIndex row) override;
  void RecordMiss(RowIndex /*row*/) override {}  // misses are accesses too; no extra signal
  [[nodiscard]] std::vector<PrefetchCandidate> Predict(size_t max) override;
  [[nodiscard]] PrefetchStrategy strategy() const override {
    return PrefetchStrategy::kHotSet;
  }

  [[nodiscard]] size_t tracked_rows() const { return weights_.size(); }

 private:
  static constexpr uint64_t kDecayEvery = 4096;
  static constexpr double kDecayFactor = 0.5;
  /// Weights below this after decay are dropped (bounds the map).
  static constexpr double kPruneBelow = 1.0 / 64.0;
  /// Hard cap on tracked rows; on overflow the coldest half is pruned.
  static constexpr size_t kMaxTracked = 1 << 16;
  /// Ranking rebuild interval (accesses). Predict() is called per request
  /// with SM misses; re-sorting the whole histogram each time would put an
  /// O(tracked) scan on the lookup path for a ranking that shifts slowly.
  static constexpr uint64_t kRebuildEvery = 64;

  void DecayAndPrune();
  void RebuildRanking(size_t max);

  PredictorGeometry geometry_;
  std::unordered_map<RowIndex, double> weights_;
  double total_weight_ = 0;
  uint64_t accesses_since_decay_ = 0;
  /// Cached descending ranking served between rebuilds (bounded staleness).
  std::vector<PrefetchCandidate> ranking_;
  size_t ranking_max_ = 0;
  uint64_t accesses_since_rebuild_ = 0;
  bool ranking_valid_ = false;
};

/// Next-block / stride readahead keyed on recent miss blocks. Detects the
/// dominant block delta among consecutive misses and predicts the rows of
/// the blocks that delta reaches from the most recent miss blocks;
/// confidence is the dominant delta's share of the recent delta window.
class NextBlockPredictor final : public PrefetchPredictor {
 public:
  explicit NextBlockPredictor(const PredictorGeometry& geometry);

  void RecordAccess(RowIndex /*row*/) override {}  // only the miss stream carries strides
  void RecordMiss(RowIndex row) override;
  [[nodiscard]] std::vector<PrefetchCandidate> Predict(size_t max) override;
  [[nodiscard]] PrefetchStrategy strategy() const override {
    return PrefetchStrategy::kNextBlock;
  }

 private:
  static constexpr size_t kHistory = 32;  ///< recent distinct miss blocks kept
  /// How many predicted blocks (dominant stride applied repeatedly from the
  /// latest miss) Predict may expand into rows.
  static constexpr int kReadaheadBlocks = 4;

  [[nodiscard]] uint64_t BlockOf(RowIndex row) const;
  /// Appends every row fully contained in `block` to `out`.
  void AppendBlockRows(uint64_t block, double confidence,
                       std::vector<PrefetchCandidate>* out) const;

  PredictorGeometry geometry_;
  std::deque<uint64_t> miss_blocks_;  ///< distinct, most recent last
};

}  // namespace sdm
