// Prefetcher — speculative readahead through the BatchScheduler's
// low-priority lane (ROADMAP "Prefetching").
//
// The LookupEngine feeds each SM-resident table's demand stream into a
// per-table PrefetchPredictor; after a request's demand runs are enqueued,
// MaybeIssue() turns the predictor's current candidates into planned runs
// (via the same IoPlanner the demand path uses) and enqueues them as
// Kind::kPrefetch ReadRequests. The scheduler gives those runs strictly
// lower priority: they ride demand doorbells, are byte-budgeted
// (`prefetch_max_inflight_bytes`), and are dropped under pressure. On
// completion the prefetched rows fill the row cache (and block cache in
// block mode) directly — no query's counters or latency are charged; the
// payoff shows up as demand cache hits (`LookupTrace::rows_prefetch_hit`).
//
// Admission discipline on the issue side:
//  - rows already cached, already speculated (issued-but-unclaimed), or
//    below `min_confidence` are filtered before planning;
//  - the prefetcher holds NO TableThrottle slots — the demand throttle
//    budgets demand device reads; speculation is bounded by the scheduler's
//    prefetch byte budget instead (two independent admission domains);
//  - boundary-straddling rows (the planner's per-row fallback) are simply
//    skipped: speculation never takes the un-coalesced path.
//
// Accounting: `bytes_issued` is bus bytes of prefetch SQEs this component
// owns; a row counts as hit when a demand lookup first claims it from a
// cache (ClaimHit). WastedBytes() = issued minus hit-backed bytes, i.e.
// speculation not (yet) justified by demand — the bench's waste metric.
//
// Single-threaded on the EventLoop thread, like the rest of the IO path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cache/block_cache.h"
#include "cache/dual_cache.h"
#include "prefetch/prefetch_predictor.h"
#include "sched/batch_scheduler.h"
#include "sched/io_planner.h"

namespace sdm {

struct PrefetchConfig {
  PrefetchStrategy strategy = PrefetchStrategy::kHotSet;
  /// Max candidate rows per issue opportunity.
  int depth = 8;
  /// Candidates below this predictor confidence are not issued. Confidence
  /// for kHotSet is the row's share of recent traffic, so useful marginal
  /// rows sit at ~1/(ranks x harmonic) — keep this floor low.
  double min_confidence = 1e-5;
  /// Planner knobs, mirrored from TuningConfig so speculative runs coalesce
  /// exactly like demand runs.
  Bytes max_coalesce_bytes = 64 * kKiB;
  Bytes coalesce_gap_bytes = 512;
  /// Owning tenant stamped on every speculative request (shared-device
  /// fair-share attribution; 0 for single-tenant stores).
  uint32_t tenant = 0;
};

struct PrefetchStats {
  uint64_t predictions = 0;   ///< candidate rows the predictor proposed
  uint64_t rows_issued = 0;   ///< rows accepted into the prefetch lane
  uint64_t reads_issued = 0;  ///< prefetch SQEs this component owns
  uint64_t runs_shared = 0;   ///< runs served by riding an existing read
  uint64_t bytes_issued = 0;  ///< bus bytes of owned prefetch SQEs
  uint64_t dropped_runs = 0;  ///< runs rejected by the lane's byte budget
  uint64_t dropped_rows = 0;
  uint64_t rows_hit = 0;  ///< prefetched rows later claimed by demand
  uint64_t bytes_hit = 0;
  uint64_t errors = 0;

  [[nodiscard]] double HitRate() const {
    return rows_issued == 0
               ? 0
               : static_cast<double>(rows_hit) / static_cast<double>(rows_issued);
  }
  [[nodiscard]] uint64_t WastedBytes() const {
    return bytes_issued > bytes_hit ? bytes_issued - bytes_hit : 0;
  }
};

class Prefetcher {
 public:
  /// Everything the prefetcher needs to know about one SM-resident table
  /// (SdmStore registers these at FinishLoading).
  struct TableInfo {
    TableId id{};
    Bytes table_offset = 0;  ///< device byte offset of row 0
    Bytes row_bytes = 0;
    uint64_t num_rows = 0;
    size_t device = 0;
    bool cache_enabled = true;
    /// SGL sub-block reads (mirrors the demand path's mode for this table).
    bool sub_block = false;
    /// Multi-level ablation: fill the block cache with whole blocks.
    bool block_mode = false;
  };

  /// `row_cache` may be null only if every registered table has
  /// cache_enabled=false (nothing to fill); `block_cache` is null unless the
  /// multi-level ablation is on. `schedulers` is indexed by device.
  Prefetcher(PrefetchConfig config, DualRowCache* row_cache, BlockCache* block_cache,
             std::vector<BatchScheduler*> schedulers);

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  void RegisterTable(const TableInfo& info);

  /// One demand access to a distinct row of `table` (post-dedup).
  void RecordAccess(TableId table, RowIndex row);

  /// `row` missed every cache and is going to the device.
  void RecordMiss(TableId table, RowIndex row);

  /// Predict-and-issue opportunity; LookupEngine calls this once per
  /// request that had SM misses, after the demand runs are enqueued (so
  /// speculation rides the demand doorbell, never the other way around).
  void MaybeIssue(TableId table);

  /// A demand lookup hit `row` in a cache: returns true (once) if that
  /// residency was this prefetcher's doing. The caller credits the hit in
  /// its trace; repeated hits on the same prefetched row count once.
  bool ClaimHit(TableId table, RowIndex row);

  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] const PrefetchConfig& config() const { return config_; }
  /// Rows speculated but not yet claimed by demand (across all tables).
  [[nodiscard]] size_t unclaimed_rows() const;

  /// Observability (src/obs): windowed metrics under `<name>prefetch/`. The
  /// prefetcher has no clock of its own, so the caller lends it `loop`.
  void set_obs(Observability* obs, EventLoop* loop, const std::string& name);

 private:
  struct TableState {
    TableInfo info;
    std::unique_ptr<PrefetchPredictor> predictor;
    /// Rows issued to the lane and not yet claimed by a demand hit. Also
    /// the re-issue filter: a row speculated once is not speculated again
    /// until demand claims it (or its read errors out).
    std::unordered_set<RowIndex> unclaimed;
  };

  /// Outstanding-speculation bound per table: when this many issued rows
  /// sit unclaimed, the predictor is clearly ahead of (or wrong about)
  /// demand and issuing more would only grow WastedBytes().
  static constexpr size_t kMaxUnclaimedRows = 8192;
  /// Cap on the candidate pool requested per issue opportunity (the
  /// residency filter consumes most of the ranking's head).
  static constexpr size_t kMaxCandidatePool = 4096;

  void IssueRuns(TableState& st, std::vector<IoPlanner::Miss> misses,
                 const std::vector<RowIndex>& rows);

  PrefetchConfig config_;
  DualRowCache* row_cache_;
  BlockCache* block_cache_;
  std::vector<BatchScheduler*> schedulers_;
  std::map<TableId, TableState> tables_;
  PrefetchStats stats_;

  // ---- Observability (src/obs); all null when off ----
  EventLoop* obs_loop_ = nullptr;
  WindowedCounter* obs_rows_issued_ = nullptr;
  WindowedCounter* obs_rows_hit_ = nullptr;
  WindowedCounter* obs_dropped_ = nullptr;
};

}  // namespace sdm
