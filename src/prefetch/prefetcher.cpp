#include "prefetch/prefetcher.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "device/nvme_device.h"

namespace sdm {

Prefetcher::Prefetcher(PrefetchConfig config, DualRowCache* row_cache,
                       BlockCache* block_cache, std::vector<BatchScheduler*> schedulers)
    : config_(config),
      row_cache_(row_cache),
      block_cache_(block_cache),
      schedulers_(std::move(schedulers)) {
  assert(!schedulers_.empty());
  assert(config_.depth >= 1);
}

void Prefetcher::RegisterTable(const TableInfo& info) {
  assert(info.row_bytes > 0);
  assert(info.device < schedulers_.size());
  TableState st;
  st.info = info;
  PredictorGeometry geometry;
  geometry.table_offset = info.table_offset;
  geometry.row_bytes = info.row_bytes;
  geometry.num_rows = info.num_rows;
  st.predictor = MakePredictor(config_.strategy, geometry);
  tables_.insert_or_assign(info.id, std::move(st));
}

void Prefetcher::RecordAccess(TableId table, RowIndex row) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) return;
  it->second.predictor->RecordAccess(row);
}

void Prefetcher::RecordMiss(TableId table, RowIndex row) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) return;
  it->second.predictor->RecordMiss(row);
}

bool Prefetcher::ClaimHit(TableId table, RowIndex row) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) return false;
  if (it->second.unclaimed.erase(row) == 0) return false;
  ++stats_.rows_hit;
  stats_.bytes_hit += it->second.info.row_bytes;
  if (obs_rows_hit_ != nullptr) obs_rows_hit_->Add(obs_loop_->Now());
  return true;
}

void Prefetcher::set_obs(Observability* obs, EventLoop* loop, const std::string& name) {
  obs_loop_ = loop;
  obs_rows_issued_ = ObsCounter(obs, name + "prefetch/rows_issued");
  obs_rows_hit_ = ObsCounter(obs, name + "prefetch/rows_hit");
  obs_dropped_ = ObsCounter(obs, name + "prefetch/dropped_runs");
}

size_t Prefetcher::unclaimed_rows() const {
  size_t n = 0;
  for (const auto& [id, st] : tables_) n += st.unclaimed.size();
  return n;
}

void Prefetcher::MaybeIssue(TableId table) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) return;
  TableState& st = it->second;
  if (st.unclaimed.size() >= kMaxUnclaimedRows) return;

  // Ask for a much deeper pool than we intend to issue: the top of the
  // ranking is (by design) already resident in the row cache, so the
  // issuable candidates — recently-evicted hot rows, marginal ranks — live
  // past it. The filters below keep the first `depth` worth fetching.
  const size_t pool =
      std::min<size_t>(kMaxCandidatePool, static_cast<size_t>(config_.depth) * 64);
  const std::vector<PrefetchCandidate> candidates = st.predictor->Predict(pool);
  stats_.predictions += candidates.size();
  if (candidates.empty()) return;

  const Bytes rb = st.info.row_bytes;
  std::vector<IoPlanner::Miss> misses;
  std::vector<RowIndex> rows;
  for (const PrefetchCandidate& c : candidates) {
    if (rows.size() >= static_cast<size_t>(config_.depth)) break;
    if (c.confidence < config_.min_confidence) continue;
    if (c.row >= st.info.num_rows) continue;
    if (st.unclaimed.count(c.row) != 0) continue;  // already speculated
    const RowKey key{table, c.row};
    if (row_cache_ != nullptr && st.info.cache_enabled && row_cache_->Contains(key)) {
      continue;  // already resident; nothing to convert
    }
    const Bytes off = st.info.table_offset + c.row * rb;
    if (st.info.block_mode && block_cache_ != nullptr &&
        off / kBlockSize == (off + rb - 1) / kBlockSize &&
        block_cache_->Contains(BlockCache::BlockKey{
            static_cast<uint32_t>(st.info.device), off / kBlockSize})) {
      continue;  // the block layer already covers this row
    }
    misses.push_back(IoPlanner::Miss{static_cast<uint32_t>(rows.size()), off});
    rows.push_back(c.row);
  }
  if (misses.empty()) return;

  IssueRuns(st, std::move(misses), rows);
}

void Prefetcher::IssueRuns(TableState& st, std::vector<IoPlanner::Miss> misses,
                           const std::vector<RowIndex>& rows) {
  PlannerConfig pcfg;
  pcfg.row_bytes = st.info.row_bytes;
  pcfg.sub_block = st.info.sub_block;
  pcfg.max_coalesce_bytes = config_.max_coalesce_bytes;
  pcfg.coalesce_gap_bytes = config_.coalesce_gap_bytes;
  IoPlan plan = IoPlanner::Plan(std::move(misses), pcfg);
  // plan.fallback_slots (boundary-straddling rows) are dropped on purpose:
  // speculation never takes the per-row path.

  BatchScheduler& scheduler = *schedulers_[st.info.device];
  for (PlannedRun& run : plan.runs) {
    std::vector<RowIndex> run_rows;
    run_rows.reserve(run.slot_indices.size());
    for (const uint32_t slot : run.slot_indices) run_rows.push_back(rows[slot]);

    BatchScheduler::ReadRequest req;
    req.span_begin = run.span_begin;
    req.span_end = run.span_end;
    req.first_block = run.first_block;
    req.last_block = run.last_block;
    req.sub_block = st.info.sub_block;
    req.kind = BatchScheduler::ReadRequest::Kind::kPrefetch;
    req.tenant = config_.tenant;
    req.rows = static_cast<uint32_t>(run_rows.size());
    req.per_row_bus = run.per_row_bus;

    const TableInfo info = st.info;  // completion outlives the iteration
    auto* self = this;
    // insert_blocks is patched after admission: only the SQE owner fills
    // the block layer (joiners would duplicate the copy + LRU churn).
    auto insert_blocks = std::make_shared<bool>(false);
    const uint64_t first_block = run.first_block;
    const uint64_t last_block = run.last_block;
    req.cb = [self, info, run_rows, insert_blocks, first_block, last_block](
                 Status status, const uint8_t* data, Bytes base) {
      TableState& ts = self->tables_.find(info.id)->second;
      if (!status.ok()) {
        // Failed speculation: forget the rows so a later opportunity (or
        // demand itself) can fetch them.
        ++self->stats_.errors;
        for (const RowIndex r : run_rows) ts.unclaimed.erase(r);
        return;
      }
      for (const RowIndex r : run_rows) {
        const Bytes off = info.table_offset + r * info.row_bytes;
        if (self->row_cache_ != nullptr && info.cache_enabled) {
          self->row_cache_->Insert(RowKey{info.id, r},
                                   std::span<const uint8_t>(data + (off - base),
                                                            info.row_bytes));
        }
      }
      if (*insert_blocks && info.block_mode && self->block_cache_ != nullptr) {
        const uint64_t blocks = last_block - first_block + 1;
        self->block_cache_->InsertBlocks(
            static_cast<uint32_t>(info.device), first_block,
            std::span<const uint8_t>(data + (first_block * kBlockSize - base),
                                     blocks * kBlockSize));
      }
    };

    const Bytes bus = NvmeDevice::BusBytes(
        run.span_begin, run.span_end - run.span_begin, st.info.sub_block);
    const BatchScheduler::Admission admission = scheduler.Enqueue(std::move(req));
    if (admission == BatchScheduler::Admission::kDropped) {
      ++stats_.dropped_runs;
      stats_.dropped_rows += run_rows.size();
      if (obs_dropped_ != nullptr) obs_dropped_->Add(obs_loop_->Now());
      continue;
    }
    for (const RowIndex r : run_rows) st.unclaimed.insert(r);
    stats_.rows_issued += run_rows.size();
    if (obs_rows_issued_ != nullptr) {
      obs_rows_issued_->Add(obs_loop_->Now(), run_rows.size());
    }
    if (admission == BatchScheduler::Admission::kNewRead) {
      *insert_blocks = true;
      ++stats_.reads_issued;
      stats_.bytes_issued += bus;
    } else {
      ++stats_.runs_shared;
    }
  }
}

}  // namespace sdm
