#include "prefetch/prefetch_predictor.h"

#include <algorithm>
#include <cassert>

namespace sdm {

const char* ToString(PrefetchStrategy s) {
  switch (s) {
    case PrefetchStrategy::kHotSet: return "hot_set";
    case PrefetchStrategy::kNextBlock: return "next_block";
  }
  return "unknown";
}

std::unique_ptr<PrefetchPredictor> MakePredictor(PrefetchStrategy strategy,
                                                 const PredictorGeometry& geometry) {
  switch (strategy) {
    case PrefetchStrategy::kHotSet:
      return std::make_unique<HotSetPredictor>(geometry);
    case PrefetchStrategy::kNextBlock:
      return std::make_unique<NextBlockPredictor>(geometry);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// HotSetPredictor
// ---------------------------------------------------------------------------

HotSetPredictor::HotSetPredictor(const PredictorGeometry& geometry)
    : geometry_(geometry) {
  assert(geometry.row_bytes > 0);
}

void HotSetPredictor::RecordAccess(RowIndex row) {
  weights_[row] += 1.0;
  total_weight_ += 1.0;
  ++accesses_since_rebuild_;
  if (++accesses_since_decay_ >= kDecayEvery || weights_.size() > kMaxTracked) {
    DecayAndPrune();
    ranking_valid_ = false;
  }
}

void HotSetPredictor::DecayAndPrune() {
  accesses_since_decay_ = 0;
  for (auto it = weights_.begin(); it != weights_.end();) {
    it->second *= kDecayFactor;
    if (it->second < kPruneBelow) {
      it = weights_.erase(it);
    } else {
      ++it;
    }
  }
  // Pathological flat streams can survive pruning; keep the map bounded by
  // decaying again (each pass halves every weight, so this terminates).
  while (weights_.size() > kMaxTracked) {
    for (auto it = weights_.begin(); it != weights_.end();) {
      it->second *= kDecayFactor;
      if (it->second < kPruneBelow) {
        it = weights_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Refold the total in row order, NOT map order: float addition is
  // non-associative, so a hash-ordered sum would leak the container's
  // iteration order (which differs across standard libraries) into every
  // confidence — breaking cross-platform byte-identity of prefetch
  // decisions and everything downstream of them.
  std::vector<double> by_row(weights_.size());
  {
    std::vector<RowIndex> rows;
    rows.reserve(weights_.size());
    for (const auto& [row, w] : weights_) rows.push_back(row);
    std::sort(rows.begin(), rows.end());
    for (size_t i = 0; i < rows.size(); ++i) by_row[i] = weights_[rows[i]];
  }
  total_weight_ = 0;
  for (double w : by_row) total_weight_ += w;
}

void HotSetPredictor::RebuildRanking(size_t max) {
  ranking_.clear();
  ranking_.reserve(weights_.size());
  for (const auto& [row, w] : weights_) {
    ranking_.push_back(PrefetchCandidate{row, w / total_weight_});
  }
  const size_t k = std::min(max, ranking_.size());
  std::partial_sort(ranking_.begin(), ranking_.begin() + static_cast<std::ptrdiff_t>(k),
                    ranking_.end(),
                    [](const PrefetchCandidate& a, const PrefetchCandidate& b) {
                      return a.confidence > b.confidence ||
                             (a.confidence == b.confidence && a.row < b.row);
                    });
  ranking_.resize(k);
  ranking_max_ = max;
  ranking_valid_ = true;
  accesses_since_rebuild_ = 0;
}

std::vector<PrefetchCandidate> HotSetPredictor::Predict(size_t max) {
  if (max == 0 || weights_.empty() || total_weight_ <= 0) return {};
  // Serve the cached ranking between rebuilds: popularity order drifts
  // slowly relative to per-request Predict calls, and the caller's
  // residency filters re-run against fresh cache state either way.
  if (!ranking_valid_ || max > ranking_max_ ||
      accesses_since_rebuild_ >= kRebuildEvery) {
    RebuildRanking(max);
  }
  std::vector<PrefetchCandidate> out = ranking_;
  if (out.size() > max) out.resize(max);
  return out;
}

// ---------------------------------------------------------------------------
// NextBlockPredictor
// ---------------------------------------------------------------------------

NextBlockPredictor::NextBlockPredictor(const PredictorGeometry& geometry)
    : geometry_(geometry) {
  assert(geometry.row_bytes > 0);
}

uint64_t NextBlockPredictor::BlockOf(RowIndex row) const {
  return (geometry_.table_offset + row * geometry_.row_bytes) / kBlockSize;
}

void NextBlockPredictor::RecordMiss(RowIndex row) {
  const uint64_t block = BlockOf(row);
  if (!miss_blocks_.empty() && miss_blocks_.back() == block) return;
  miss_blocks_.push_back(block);
  if (miss_blocks_.size() > kHistory) miss_blocks_.pop_front();
}

void NextBlockPredictor::AppendBlockRows(uint64_t block, double confidence,
                                         std::vector<PrefetchCandidate>* out) const {
  // Rows fully contained in `block` (boundary-straddling rows are the
  // planner's fallback path on the demand side too).
  const Bytes block_begin = block * kBlockSize;
  const Bytes block_end = block_begin + kBlockSize;
  if (block_end <= geometry_.table_offset) return;
  const Bytes rb = geometry_.row_bytes;
  Bytes first_off = block_begin > geometry_.table_offset ? block_begin : geometry_.table_offset;
  // Round up to the next row start at or after first_off.
  const uint64_t first_row = (first_off - geometry_.table_offset + rb - 1) / rb;
  for (uint64_t r = first_row; r < geometry_.num_rows; ++r) {
    const Bytes off = geometry_.table_offset + r * rb;
    if (off + rb > block_end) break;
    out->push_back(PrefetchCandidate{r, confidence});
  }
}

std::vector<PrefetchCandidate> NextBlockPredictor::Predict(size_t max) {
  std::vector<PrefetchCandidate> out;
  if (max == 0 || miss_blocks_.size() < 2) return out;

  // Dominant delta among consecutive recent miss blocks.
  std::unordered_map<int64_t, int> deltas;
  for (size_t i = 1; i < miss_blocks_.size(); ++i) {
    ++deltas[static_cast<int64_t>(miss_blocks_[i]) -
             static_cast<int64_t>(miss_blocks_[i - 1])];
  }
  int64_t stride = 0;
  int best = 0;
  int total = 0;
  // The winner must be picked by a total order: count desc, then nonzero
  // before zero, then smaller magnitude, then forward over backward. A
  // tie-break that leaves any pair unordered (e.g. +2 vs -2 at equal count)
  // would resolve by unordered_map iteration order, which differs across
  // standard libraries and would fork prefetch decisions cross-platform.
  const auto beats = [](int64_t d, int n, int64_t cur, int cur_n) {
    if (n != cur_n) return n > cur_n;
    if ((d == 0) != (cur == 0)) return d != 0;
    if (std::abs(d) != std::abs(cur)) return std::abs(d) < std::abs(cur);
    return d > cur;
  };
  bool have = false;
  for (const auto& [d, n] : deltas) {
    total += n;
    if (!have || beats(d, n, stride, best)) {
      best = n;
      stride = d;
      have = true;
    }
  }
  if (stride == 0 || total == 0) return out;
  const double confidence = static_cast<double>(best) / static_cast<double>(total);

  // Apply the stride repeatedly from the most recent miss block.
  const Bytes table_end = geometry_.table_offset + geometry_.num_rows * geometry_.row_bytes;
  const uint64_t last_block = table_end == 0 ? 0 : (table_end - 1) / kBlockSize;
  int64_t block = static_cast<int64_t>(miss_blocks_.back());
  for (int i = 0; i < kReadaheadBlocks && out.size() < max; ++i) {
    block += stride;
    if (block < 0 || static_cast<uint64_t>(block) > last_block) break;
    AppendBlockRows(static_cast<uint64_t>(block), confidence, &out);
  }
  if (out.size() > max) out.resize(max);
  return out;
}

}  // namespace sdm
