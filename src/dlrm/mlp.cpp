#include "dlrm/mlp.h"

#include <cassert>
#include <cmath>

namespace sdm {

LinearLayer::LinearLayer(uint32_t in_dim, uint32_t out_dim, Activation act, uint64_t seed)
    : in_dim_(in_dim), out_dim_(out_dim), act_(act) {
  assert(in_dim > 0 && out_dim > 0);
  Rng rng(seed);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_dim));
  weights_.resize(static_cast<size_t>(in_dim) * out_dim);
  for (auto& w : weights_) w = static_cast<float>(rng.NextGaussian()) * stddev;
  bias_.assign(out_dim, 0.0f);
}

void LinearLayer::Forward(std::span<const float> in, std::span<float> out) const {
  assert(in.size() == in_dim_);
  assert(out.size() == out_dim_);
  for (uint32_t o = 0; o < out_dim_; ++o) {
    const float* w = weights_.data() + static_cast<size_t>(o) * in_dim_;
    float acc = bias_[o];
    for (uint32_t i = 0; i < in_dim_; ++i) acc += w[i] * in[i];
    switch (act_) {
      case Activation::kRelu: out[o] = acc > 0 ? acc : 0; break;
      case Activation::kSigmoid: out[o] = 1.0f / (1.0f + std::exp(-acc)); break;
      case Activation::kNone: out[o] = acc; break;
    }
  }
}

Mlp::Mlp(std::span<const uint32_t> widths, LinearLayer::Activation final_activation,
         uint64_t seed) {
  assert(widths.size() >= 2);
  Rng rng(seed);
  layers_.reserve(widths.size() - 1);
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool last = i + 2 == widths.size();
    layers_.emplace_back(widths[i], widths[i + 1],
                         last ? final_activation : LinearLayer::Activation::kRelu,
                         rng.Next());
  }
}

std::vector<float> Mlp::Forward(std::span<const float> in) const {
  std::vector<float> cur(in.begin(), in.end());
  std::vector<float> next;
  for (const auto& layer : layers_) {
    next.assign(layer.out_dim(), 0.0f);
    layer.Forward(cur, next);
    cur.swap(next);
  }
  return cur;
}

uint64_t Mlp::flops() const {
  uint64_t total = 0;
  for (const auto& layer : layers_) total += layer.flops();
  return total;
}

}  // namespace sdm
