#include "dlrm/model_zoo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace sdm {

namespace {

struct RoleParams {
  size_t tables = 0;
  Bytes capacity = 0;       ///< aggregate bytes for this role (already scaled)
  Bytes row_bytes_min = 0;  ///< stored-row size range (paper "Emb table dim (B)")
  Bytes row_bytes_max = 0;
  double avg_pooling = 1.0;
  double alpha_min = 0.5;  ///< temporal-locality range (item > user, Fig. 4)
  double alpha_max = 0.9;
};

struct ZooParams {
  std::string name;
  RoleParams user;
  RoleParams item;
  int item_batch = 1;
  int mlp_layers = 0;
  int mlp_width = 0;
  uint64_t seed = 0;
};

void AppendRole(ModelConfig& model, TableRole role, const RoleParams& p, Rng& rng) {
  if (p.tables == 0) return;

  // Log-normal capacity shares reproduce the Fig. 1 skew: a few huge tables,
  // a long tail of small ones.
  std::vector<double> weights(p.tables);
  double total = 0;
  for (auto& w : weights) {
    w = std::exp(rng.NextGaussian() * 1.2);
    total += w;
  }

  // Pooling factors spread around the average, renormalized to hit it.
  std::vector<double> pfs(p.tables);
  double pf_sum = 0;
  for (auto& pf : pfs) {
    pf = std::exp(rng.NextGaussian() * 0.6);
    pf_sum += pf;
  }
  const double pf_norm = p.avg_pooling * static_cast<double>(p.tables) / pf_sum;

  for (size_t i = 0; i < p.tables; ++i) {
    TableConfig t;
    t.name = model.name + "." + (role == TableRole::kUser ? "user" : "item") + "." +
             std::to_string(i);
    t.role = role;
    t.dtype = DataType::kInt8Rowwise;

    // Stored-row bytes log-uniform in [min, max]; int8 rowwise layout means
    // dim elements = stored bytes - 8.
    const double lg = rng.NextDouble(std::log(static_cast<double>(p.row_bytes_min)),
                                     std::log(static_cast<double>(p.row_bytes_max)));
    const auto row_bytes = static_cast<Bytes>(std::lround(std::exp(lg)));
    t.dim = static_cast<uint32_t>(std::max<Bytes>(row_bytes, 12) - 8);

    const auto table_bytes =
        static_cast<Bytes>(static_cast<double>(p.capacity) * weights[i] / total);
    t.num_rows = std::max<uint64_t>(64, table_bytes / t.row_bytes());

    t.avg_pooling_factor = std::max(1.0, pfs[i] * pf_norm);
    t.zipf_alpha = rng.NextDouble(p.alpha_min, p.alpha_max);
    model.tables.push_back(std::move(t));
  }
}

ModelConfig Generate(const ZooParams& p) {
  ModelConfig model;
  model.name = p.name;
  model.item_batch_size = p.item_batch;
  model.user_batch_size = 1;
  model.num_mlp_layers = p.mlp_layers;
  model.avg_mlp_width = p.mlp_width;
  Rng rng(p.seed);
  AppendRole(model, TableRole::kUser, p.user, rng);
  AppendRole(model, TableRole::kItem, p.item, rng);
  return model;
}

Bytes Scaled(double gib, double scale) {
  return static_cast<Bytes>(gib * scale * static_cast<double>(kGiB));
}

}  // namespace

ModelConfig MakeM1(double capacity_scale) {
  ZooParams p;
  p.name = "m1";
  p.user = {61, Scaled(95, capacity_scale), 90, 172, 42.0, 0.55, 0.90};
  p.item = {30, Scaled(48, capacity_scale), 90, 172, 9.0, 0.85, 1.15};
  p.item_batch = 50;
  p.mlp_layers = 31;
  p.mlp_width = 300;
  p.seed = 0x5ee1;
  return Generate(p);
}

ModelConfig MakeM2(double capacity_scale) {
  ZooParams p;
  p.name = "m2";
  p.user = {450, Scaled(100, capacity_scale), 32, 288, 25.0, 0.55, 0.90};
  p.item = {280, Scaled(50, capacity_scale), 32, 320, 14.0, 0.85, 1.15};
  p.item_batch = 150;
  p.mlp_layers = 43;
  p.mlp_width = 735;
  p.seed = 0x5ee2;
  return Generate(p);
}

ModelConfig MakeM3(double capacity_scale) {
  ZooParams p;
  p.name = "m3";
  p.user = {1800, Scaled(667, capacity_scale), 32, 512, 26.0, 0.55, 0.90};
  p.item = {900, Scaled(333, capacity_scale), 32, 512, 26.0, 0.85, 1.15};
  p.item_batch = 1000;
  p.mlp_layers = 35;
  p.mlp_width = 6000;
  p.seed = 0x5ee3;
  return Generate(p);
}

ModelConfig MakeFig1Model(double capacity_scale) {
  // "a 140GB model ... 734 tables, out of which 445 are user tables
  //  accounting for 100GB".
  ZooParams p;
  p.name = "fig1";
  p.user = {445, Scaled(100, capacity_scale), 32, 256, 30.0, 0.55, 0.90};
  p.item = {289, Scaled(40, capacity_scale), 32, 256, 12.0, 0.85, 1.15};
  p.item_batch = 100;
  p.mlp_layers = 30;
  p.mlp_width = 400;
  p.seed = 0xf161;
  return Generate(p);
}

ModelConfig MakeTinyUniformModel(uint32_t dim, size_t user_tables, size_t item_tables,
                                 uint64_t rows_per_table) {
  ModelConfig model;
  model.name = "tiny";
  model.item_batch_size = 4;
  model.user_batch_size = 1;
  model.num_mlp_layers = 4;
  model.avg_mlp_width = 64;
  Rng rng(0x71a9);
  for (size_t i = 0; i < user_tables + item_tables; ++i) {
    TableConfig t;
    const bool user = i < user_tables;
    t.name = std::string("tiny.") + (user ? "user." : "item.") +
             std::to_string(user ? i : i - user_tables);
    t.role = user ? TableRole::kUser : TableRole::kItem;
    t.dtype = DataType::kInt8Rowwise;
    t.dim = dim;
    t.num_rows = rows_per_table;
    t.avg_pooling_factor = user ? 8.0 : 4.0;
    t.zipf_alpha = rng.NextDouble(0.6, 1.1);
    model.tables.push_back(std::move(t));
  }
  return model;
}

}  // namespace sdm
