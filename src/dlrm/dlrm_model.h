// DLRM — full model assembly (paper Fig. 2).
//
// Bottom MLP re-projects continuous features; embedding bags (served by the
// SDM's LookupEngine) densify categorical features; the dot-product
// interaction combines them; the top MLP produces the CTR score.
//
// The real-math path (Score*) requires every embedding table to share one
// dimension, as the dot interaction does in production DLRM. The cost path
// (ComputeCost) works for any ModelConfig and powers the serving simulator.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "dlrm/mlp.h"
#include "embedding/table_config.h"

namespace sdm {

struct DlrmArchitecture {
  uint32_t dense_features = 13;           ///< continuous input width
  std::vector<uint32_t> bottom_widths;    ///< hidden widths; output appended
  std::vector<uint32_t> top_widths;       ///< hidden widths; 1 appended
  uint32_t embedding_dim = 32;            ///< shared dim for interaction
  uint64_t seed = 7;
};

class DlrmModel {
 public:
  /// Builds the dense side. `sparse` describes the embedding tables (used
  /// for validation and cost modeling; their storage lives in the SDM).
  DlrmModel(DlrmArchitecture arch, ModelConfig sparse);

  /// Scores one (user, item) pair: `dense` continuous features and one
  /// pooled embedding vector per table (all of length embedding_dim).
  /// Returns the CTR probability in [0, 1].
  [[nodiscard]] Result<float> Score(std::span<const float> dense,
                                    std::span<const std::vector<float>> pooled) const;

  /// Dot-product feature interaction: bottom output and each pooled vector
  /// pairwise-dotted; returns [bottom ; upper-triangle dots].
  [[nodiscard]] std::vector<float> Interact(std::span<const float> bottom_out,
                                            std::span<const std::vector<float>> pooled) const;

  [[nodiscard]] const Mlp& bottom() const { return *bottom_; }
  [[nodiscard]] const Mlp& top() const { return *top_; }
  [[nodiscard]] const ModelConfig& sparse() const { return sparse_; }
  [[nodiscard]] const DlrmArchitecture& arch() const { return arch_; }

  /// Dense-side FLOPs for one sample (one item for one user).
  [[nodiscard]] uint64_t DenseFlopsPerSample() const;

  /// Expected top-MLP input width for N tables of embedding_dim.
  [[nodiscard]] uint32_t InteractionWidth(size_t num_tables) const;

 private:
  DlrmArchitecture arch_;
  ModelConfig sparse_;
  std::unique_ptr<Mlp> bottom_;
  std::unique_ptr<Mlp> top_;
};

/// Analytic dense-compute cost for the serving simulator: approximates the
/// Table 6 "Num MLP layers / Avg MLP size" models without materializing
/// multi-thousand-wide weights.
struct DenseCostModel {
  double flops_per_sec = 2.0e11;  ///< effective per-host dense throughput

  [[nodiscard]] static uint64_t FlopsPerSample(const ModelConfig& model) {
    // num_layers dense layers of avg_width x avg_width.
    return uint64_t{2} * static_cast<uint64_t>(model.num_mlp_layers) *
           static_cast<uint64_t>(model.avg_mlp_width) *
           static_cast<uint64_t>(model.avg_mlp_width);
  }

  [[nodiscard]] SimDuration TimePerQuery(const ModelConfig& model) const {
    // One query scores item_batch_size items (user side broadcast).
    const double flops = static_cast<double>(FlopsPerSample(model)) *
                         static_cast<double>(model.item_batch_size);
    return Seconds(flops / flops_per_sec);
  }
};

}  // namespace sdm
