// Dense layers: fully-connected stacks with ReLU, used for the DLRM bottom
// and top MLPs (paper Fig. 2). Real float math — examples and tests execute
// genuine forward passes; the serving simulator additionally uses the FLOP
// count to charge virtual compute time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace sdm {

/// One fully-connected layer: y = act(W x + b).
class LinearLayer {
 public:
  enum class Activation : uint8_t { kRelu, kSigmoid, kNone };

  /// He-style random init, deterministic in `seed`.
  LinearLayer(uint32_t in_dim, uint32_t out_dim, Activation act, uint64_t seed);

  void Forward(std::span<const float> in, std::span<float> out) const;

  [[nodiscard]] uint32_t in_dim() const { return in_dim_; }
  [[nodiscard]] uint32_t out_dim() const { return out_dim_; }
  [[nodiscard]] uint64_t flops() const { return uint64_t{2} * in_dim_ * out_dim_; }

 private:
  uint32_t in_dim_;
  uint32_t out_dim_;
  Activation act_;
  std::vector<float> weights_;  // row-major [out][in]
  std::vector<float> bias_;
};

/// A stack of LinearLayers. The final layer's activation is configurable
/// (sigmoid for CTR heads, ReLU for feature re-projection).
class Mlp {
 public:
  /// widths = {in, h1, h2, ..., out}; needs >= 2 entries.
  Mlp(std::span<const uint32_t> widths, LinearLayer::Activation final_activation,
      uint64_t seed);

  [[nodiscard]] std::vector<float> Forward(std::span<const float> in) const;

  [[nodiscard]] uint32_t in_dim() const { return layers_.front().in_dim(); }
  [[nodiscard]] uint32_t out_dim() const { return layers_.back().out_dim(); }
  [[nodiscard]] size_t depth() const { return layers_.size(); }
  [[nodiscard]] uint64_t flops() const;

 private:
  std::vector<LinearLayer> layers_;
};

}  // namespace sdm
