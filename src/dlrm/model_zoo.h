// Model zoo: the paper's target models (Table 6) as generators.
//
// M1 (143GB, CPU-served), M2 (150GB, accelerator + scale-out candidate) and
// M3 (1TB, future multi-tenant) are reproduced structurally — table counts,
// dim ranges, pooling factors, batch sizes, MLP shape — with capacities
// scaled by `capacity_scale` so experiments fit in RAM. Table sizes follow a
// log-normal spread (the Fig. 1 skew) and dims/pooling factors are sampled
// deterministically within the paper's ranges.
#pragma once

#include "embedding/table_config.h"

namespace sdm {

/// Default scale: 1/1024 of production capacity (GB -> MB).
constexpr double kDefaultZooScale = 1.0 / 1024.0;

/// M1: 143GB, 61 user tables (dim 90-172B, avg PF 42), 30 item tables
/// (avg PF 9), item batch 50, 31 MLP layers of avg width 300.
[[nodiscard]] ModelConfig MakeM1(double capacity_scale = kDefaultZooScale);

/// M2: 150GB (user side ~100GB), 450 user tables (dim 32-288B, avg PF 25),
/// 280 item tables (avg PF 14), item batch 150, 43 MLP layers of width 735.
[[nodiscard]] ModelConfig MakeM2(double capacity_scale = kDefaultZooScale);

/// M3: 1TB, 1800 user tables (dim 32-512B, avg PF 26), 900 item tables,
/// item batch 1000, 35 MLP layers of width 6000.
[[nodiscard]] ModelConfig MakeM3(double capacity_scale = kDefaultZooScale / 8);

/// The 140GB / 734-table (445 user) model behind Fig. 1's size-vs-BW skew.
[[nodiscard]] ModelConfig MakeFig1Model(double capacity_scale = kDefaultZooScale);

/// Small uniform-dim model for examples and tests that execute the real
/// DLRM math (dot interaction requires one shared dim).
[[nodiscard]] ModelConfig MakeTinyUniformModel(uint32_t dim = 32, size_t user_tables = 6,
                                               size_t item_tables = 2,
                                               uint64_t rows_per_table = 5000);

}  // namespace sdm
