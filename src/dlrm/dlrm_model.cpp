#include "dlrm/dlrm_model.h"

#include <cassert>

namespace sdm {

DlrmModel::DlrmModel(DlrmArchitecture arch, ModelConfig sparse)
    : arch_(std::move(arch)), sparse_(std::move(sparse)) {
  // Bottom: dense_features -> hidden... -> embedding_dim (so the bottom
  // output participates in the dot interaction).
  std::vector<uint32_t> bw;
  bw.push_back(arch_.dense_features);
  bw.insert(bw.end(), arch_.bottom_widths.begin(), arch_.bottom_widths.end());
  bw.push_back(arch_.embedding_dim);
  bottom_ = std::make_unique<Mlp>(bw, LinearLayer::Activation::kRelu, arch_.seed);

  std::vector<uint32_t> tw;
  tw.push_back(InteractionWidth(sparse_.tables.size()));
  tw.insert(tw.end(), arch_.top_widths.begin(), arch_.top_widths.end());
  tw.push_back(1);
  top_ = std::make_unique<Mlp>(tw, LinearLayer::Activation::kSigmoid, arch_.seed + 1);
}

uint32_t DlrmModel::InteractionWidth(size_t num_tables) const {
  // bottom output (d) + upper triangle of pairwise dots among the
  // (num_tables + 1) dense vectors.
  const auto n = static_cast<uint32_t>(num_tables) + 1;
  return arch_.embedding_dim + n * (n - 1) / 2;
}

std::vector<float> DlrmModel::Interact(std::span<const float> bottom_out,
                                       std::span<const std::vector<float>> pooled) const {
  const uint32_t d = arch_.embedding_dim;
  assert(bottom_out.size() == d);

  // Collect the (tables + 1) vectors.
  std::vector<std::span<const float>> vecs;
  vecs.reserve(pooled.size() + 1);
  vecs.emplace_back(bottom_out);
  for (const auto& p : pooled) {
    assert(p.size() == d);
    vecs.emplace_back(p);
  }

  std::vector<float> out;
  out.reserve(InteractionWidth(pooled.size()));
  out.insert(out.end(), bottom_out.begin(), bottom_out.end());
  for (size_t i = 0; i < vecs.size(); ++i) {
    for (size_t j = i + 1; j < vecs.size(); ++j) {
      float dot = 0;
      for (uint32_t k = 0; k < d; ++k) dot += vecs[i][k] * vecs[j][k];
      out.push_back(dot);
    }
  }
  return out;
}

Result<float> DlrmModel::Score(std::span<const float> dense,
                               std::span<const std::vector<float>> pooled) const {
  if (dense.size() != arch_.dense_features) {
    return InvalidArgumentError("dense feature width mismatch");
  }
  if (pooled.size() != sparse_.tables.size()) {
    return InvalidArgumentError("pooled vector count != table count");
  }
  for (const auto& p : pooled) {
    if (p.size() != arch_.embedding_dim) {
      return InvalidArgumentError("pooled vector dim != embedding_dim");
    }
  }
  const std::vector<float> bottom_out = bottom_->Forward(dense);
  const std::vector<float> z = Interact(bottom_out, pooled);
  const std::vector<float> y = top_->Forward(z);
  assert(y.size() == 1);
  return y[0];
}

uint64_t DlrmModel::DenseFlopsPerSample() const {
  return bottom_->flops() + top_->flops();
}

}  // namespace sdm
